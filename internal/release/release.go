// Package release is the serving layer of the repository: a versioned
// store of immutable published releases built asynchronously by a worker
// pool and addressable by ID, plus a query engine that answers COUNT(*)
// estimates against a release through a per-dimension grid index over EC
// bounding boxes instead of the linear EC scan of internal/query.
//
// The store is memory-only by default (NewStore); Open makes it durable
// over a data directory — ready releases persist as versioned,
// checksummed snapshot files (EncodeSnapshot/DecodeSnapshot) tracked by
// an append-only manifest, and reopening the directory recovers every
// release crash-safely with zero re-anonymization.
//
// Anonymization itself is dispatched through the public anon registry: a
// build names a method ("burel", "anatomy", "perturb", ...) plus its
// typed params, so a new publication scheme becomes a registry entry and
// the store serves it unchanged.
package release

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/anon"
	"repro/internal/microdata"
	"repro/internal/query"
)

// Kind names the queryable shape of a release's payload, derived from the
// producing method's output.
type Kind string

const (
	// KindGeneralized is an EC-partition release (BUREL §4), served
	// through the grid index.
	KindGeneralized Kind = "generalized"
	// KindAnatomy is an Anatomy-style publication (§6.3): the Baseline
	// or the full ℓ-diverse two-table form.
	KindAnatomy Kind = "anatomy"
	// KindPerturbed is the (ρ1, ρ2)-privacy randomized response of §5.
	KindPerturbed Kind = "perturbed"
)

// Status is a release's lifecycle state.
type Status string

const (
	StatusPending  Status = "pending"
	StatusBuilding Status = "building"
	StatusReady    Status = "ready"
	StatusFailed   Status = "failed"
)

// Spec configures one anonymization job: the method name and typed params
// dispatched through the anon registry, plus the store-level knobs that
// are not the method's business — input projection and index resolution.
type Spec struct {
	// Method is the anon registry name of the scheme to run.
	Method string
	// Params configures the method; nil selects the method's defaults.
	Params anon.Params
	// QI projects the table to its first QI attributes before
	// anonymizing; 0 keeps all of them.
	QI int
	// GridCells overrides the per-dimension index resolution (0 = auto).
	GridCells int
}

// specJSON is the wire form of a Spec; Params stays raw until the method
// is known.
type specJSON struct {
	Method    string          `json:"method"`
	Params    json.RawMessage `json:"params,omitempty"`
	QI        int             `json:"qi,omitempty"`
	GridCells int             `json:"grid_cells,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (s Spec) MarshalJSON() ([]byte, error) {
	var raw json.RawMessage
	if s.Params != nil {
		data, err := json.Marshal(s.Params)
		if err != nil {
			return nil, err
		}
		raw = data
	}
	return json.Marshal(specJSON{Method: s.Method, Params: raw, QI: s.QI, GridCells: s.GridCells})
}

// UnmarshalJSON implements json.Unmarshaler, decoding params into the
// method's typed params value via the anon registry.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var w specJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	// An empty method is a spec that was never filled in (snapshots planted
	// through Register carry one); keep it empty rather than failing the
	// registry lookup — Normalize still rejects it on any build path.
	if w.Method == "" && len(w.Params) == 0 {
		*s = Spec{QI: w.QI, GridCells: w.GridCells}
		return nil
	}
	p, err := anon.UnmarshalParams(w.Method, w.Params)
	if err != nil {
		return err
	}
	*s = Spec{Method: w.Method, Params: p, QI: w.QI, GridCells: w.GridCells}
	return nil
}

// Normalize fills nil Params with the method's defaults and validates the
// whole spec. It must pass before a build is accepted.
func (s *Spec) Normalize() error {
	if s.Params == nil {
		p, err := anon.NewParams(s.Method)
		if err != nil {
			return err
		}
		s.Params = p
	} else {
		if _, err := anon.Lookup(s.Method); err != nil {
			return err
		}
		if got := s.Params.Method(); got != s.Method {
			return fmt.Errorf("release: spec method %q carries params for %q", s.Method, got)
		}
		if err := s.Params.Validate(); err != nil {
			return fmt.Errorf("%w: %v", anon.ErrInvalidParams, err)
		}
	}
	if s.QI < 0 {
		return fmt.Errorf("release: qi must be ≥ 0, got %d", s.QI)
	}
	if s.GridCells < 0 || s.GridCells > MaxGridCells {
		return fmt.Errorf("release: grid_cells must be in [0,%d], got %d", MaxGridCells, s.GridCells)
	}
	return nil
}

// Meta is the externally visible state of a release: everything but the
// payload. Copies are safe to hand out; the store never mutates a Meta it
// has returned.
type Meta struct {
	ID      string `json:"id"`
	Version uint64 `json:"version"`
	Spec    Spec   `json:"spec"`
	Status  Status `json:"status"`
	// Error carries the build failure message when Status is failed.
	Error string `json:"error,omitempty"`
	// Rows is the input table size; NumECs the published group count
	// (generalized and ℓ-diverse anatomy kinds).
	Rows   int `json:"rows"`
	NumECs int `json:"num_ecs,omitempty"`
	// AIL is the average information loss of a generalized release.
	AIL       float64   `json:"ail,omitempty"`
	CreatedAt time.Time `json:"created_at"`
	ReadyAt   time.Time `json:"ready_at,omitzero"`
	// BuildMillis is the wall-clock build duration.
	BuildMillis int64 `json:"build_ms,omitempty"`
	// Persisted reports that the release's snapshot is durably on disk in
	// the store's data directory: it will survive a restart. Always false
	// on a memory-only store.
	Persisted bool `json:"persisted,omitempty"`
}

// Snapshot is the immutable queryable payload of a ready release: the
// anon.Release produced by the method, plus the serving-side index for
// generalized payloads. All fields are read-only after build; Estimate is
// safe for concurrent use.
type Snapshot struct {
	Kind   Kind
	Schema *microdata.Schema

	// Release is the method output backing this snapshot (the published
	// ECs of a generalized release live in Release.ECs).
	Release *anon.Release

	// Index is the serving-side grid index over a generalized release's
	// EC bounding boxes.
	Index *ECIndex
}

// NewSnapshot wraps a method's release in its serving form, building the
// grid index for generalized payloads. gridCells overrides the index's
// per-dimension resolution (0 = auto).
func NewSnapshot(rel *anon.Release, gridCells int) (*Snapshot, error) {
	if rel == nil || rel.Schema == nil {
		return nil, fmt.Errorf("release: nil release")
	}
	s := &Snapshot{Schema: rel.Schema, Release: rel}
	switch {
	case rel.ECs != nil:
		s.Kind = KindGeneralized
		s.Index = BuildIndex(rel.Schema, rel.ECs, gridCells)
	case rel.Baseline != nil || rel.LDiverse != nil:
		s.Kind = KindAnatomy
	case rel.Perturbed != nil && rel.Scheme != nil:
		s.Kind = KindPerturbed
	default:
		return nil, fmt.Errorf("release: method %q produced no queryable payload", rel.Method)
	}
	return s, nil
}

// build runs the anonymization selected by spec over t and returns the
// queryable snapshot. It is executed on a store worker goroutine; ctx
// aborts the run.
func build(ctx context.Context, t *microdata.Table, spec Spec) (*Snapshot, error) {
	if spec.QI > 0 && spec.QI < len(t.Schema.QI) {
		t = t.Project(spec.QI)
	}
	m, err := anon.Lookup(spec.Method)
	if err != nil {
		return nil, err
	}
	rel, err := m.Anonymize(ctx, t, spec.Params)
	if err != nil {
		return nil, err
	}
	return NewSnapshot(rel, spec.GridCells)
}

// NumECs returns the number of published groups, 0 for kinds without them.
func (s *Snapshot) NumECs() int {
	if s.Index != nil {
		return s.Index.NumECs()
	}
	if s.Release != nil {
		return s.Release.NumECs()
	}
	return 0
}

// AIL returns the average information loss of a generalized release, 0
// for other kinds.
func (s *Snapshot) AIL() float64 {
	if s.Release != nil {
		return s.Release.AIL
	}
	return 0
}

// Estimate answers one COUNT(*) query against the release using the
// estimator matching its kind: the indexed intersection estimator for
// generalized releases, per-group intersection for ℓ-diverse Anatomy,
// distribution scaling for the Baseline, and PM⁻¹ reconstruction for
// perturbed releases.
func (s *Snapshot) Estimate(q query.Query) (float64, error) {
	return s.EstimateWith(q, nil)
}

// EstimateWith answers like Estimate but lets the caller supply reusable
// scratch state for the indexed estimator. A nil scratch falls back to
// the index's internal pool; kinds other than generalized ignore it.
func (s *Snapshot) EstimateWith(q query.Query, sc *Scratch) (float64, error) {
	if err := s.ValidateQuery(q); err != nil {
		return 0, err
	}
	return s.EstimateUnchecked(q, sc)
}

// EstimateUnchecked answers without re-running ValidateQuery: the entry
// point for batch executors that validate a whole batch up front. The
// caller must have validated q against this snapshot — a malformed query
// may panic an estimator.
func (s *Snapshot) EstimateUnchecked(q query.Query, sc *Scratch) (float64, error) {
	if len(q.GroupBy) != 0 {
		// Grouped queries are expanded into per-cell scalar queries by the
		// batch engine; a single scalar return cannot carry their results.
		return 0, fmt.Errorf("release: grouped queries are executed by the batch engine")
	}
	switch s.Kind {
	case KindGeneralized:
		if sc != nil {
			return s.Index.EstimateScratch(q, sc), nil
		}
		return s.Index.Estimate(q), nil
	case KindAnatomy:
		if s.Release.LDiverse != nil {
			return query.EstimateLDiverse(s.Release.LDiverse, q), nil
		}
		return query.EstimateBaseline(s.Release.Baseline, q)
	case KindPerturbed:
		return query.EstimatePerturbed(s.Release.Perturbed, s.Release.Scheme, q)
	}
	return 0, fmt.Errorf("release: kind %q is not queryable", s.Kind)
}

// ValidateQuery bounds-checks predicate dimensions and the SA range so a
// malformed network query cannot panic an estimator. Estimate runs it on
// every call; batch executors may run it separately to reject a bad
// query before any fan-out.
func (s *Snapshot) ValidateQuery(q query.Query) error {
	return query.Validate(s.Schema, q)
}
