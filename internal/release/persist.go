package release

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// RecoveryStats summarizes what Open reconstructed from a data
// directory.
type RecoveryStats struct {
	// Ready counts releases whose snapshot was loaded from disk and
	// re-registered queryable — served again with zero re-anonymization.
	Ready int
	// Failed counts releases restored in their recorded terminal failed
	// state.
	Failed int
	// Interrupted counts releases that were mid-build when the process
	// died (a submitted record with no terminal record); they are
	// re-registered as failed, never left hung.
	Interrupted int
	// Corrupt counts ready records whose snapshot file was missing,
	// truncated, or failed its checksum; they are re-registered as failed
	// with the decode error and skipped from serving.
	Corrupt int
	// SkippedLines counts malformed manifest lines dropped during replay
	// (e.g. a torn tail from a crash mid-append).
	SkippedLines int
}

// Open starts a durable store over dir (created if absent): the manifest
// is replayed so every release the store ever promised is restored —
// ready ones queryable straight from their snapshot files, failed and
// crash-interrupted ones in a terminal failed state — and all subsequent
// builds persist their snapshot before flipping to ready. Corrupt
// snapshot files are skipped from serving with a logged reason and
// surface as failed releases. workers is as in NewStore.
func Open(dir string, workers int) (*Store, error) {
	return OpenNode(dir, workers, "")
}

// OpenNode is Open with a cluster node identity (see NewStoreNode):
// recovered releases keep the IDs recorded in the manifest — including
// replicas installed under another node's prefix — and newly minted IDs
// carry this node's prefix, so a node restarted against its own data
// directory rejoins the cluster without colliding with its peers.
func OpenNode(dir string, workers int, node string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("release: creating data dir: %w", err)
	}
	unlock, err := lockDataDir(dir)
	if err != nil {
		return nil, err
	}
	man, records, skipped, err := openManifest(dir)
	if err != nil {
		unlock()
		return nil, err
	}
	s, err := NewStoreNode(workers, node)
	if err != nil {
		man.close()
		unlock()
		return nil, err
	}
	s.dir = dir
	s.man = man
	s.unlock = unlock
	s.recovered.SkippedLines = skipped
	if skipped > 0 {
		slog.Warn("skipped malformed manifest lines", "component", "release", "dir", dir, "skipped", skipped)
	}
	s.replay(records)
	s.sweepOrphans(records)
	return s, nil
}

// sweepOrphans removes snapshot and temp files no manifest ready record
// references: a crash between a snapshot's rename and its manifest
// ready append (or mid-write) leaves complete-but-unreachable files
// that recovery can never serve and would otherwise leak forever.
// Referenced-but-corrupt files are deliberately kept for forensics —
// their release is addressable (failed) and names them in its error.
func (s *Store) sweepOrphans(records []manifestRecord) {
	live := make(map[string]bool, len(records))
	for i := range records {
		if records[i].Event == eventReady && records[i].File != "" {
			live[records[i].File] = true
		}
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		isTmp := strings.HasSuffix(name, ".snap.tmp")
		isSnap := strings.HasSuffix(name, ".snap")
		if e.IsDir() || (!isSnap && !isTmp) || (isSnap && live[name]) {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, name)); err == nil {
			slog.Info("removed orphan snapshot file", "component", "release", "dir", s.dir, "file", name)
		}
	}
}

// replay folds the manifest into store records. It runs before the store
// is shared, so it can write state without the usual locking discipline.
func (s *Store) replay(records []manifestRecord) {
	// Last event per release wins; submitted records are kept alongside so
	// an interrupted build can be reconstructed with its spec and times.
	type state struct {
		submitted *manifestRecord
		last      *manifestRecord
	}
	byID := make(map[string]*state)
	var order []string
	for i := range records {
		rec := &records[i]
		st := byID[rec.ID]
		if st == nil {
			st = &state{}
			byID[rec.ID] = st
			order = append(order, rec.ID)
		}
		if rec.Event == eventSubmitted {
			st.submitted = rec
		}
		st.last = rec
		if rec.Version > s.version {
			s.version = rec.Version
		}
	}
	sort.Slice(order, func(i, j int) bool {
		return byID[order[i]].last.Version < byID[order[j]].last.Version
	})
	for _, id := range order {
		st := byID[id]
		switch st.last.Event {
		case eventRejected:
			// Submit returned an error for this ID; it was never visible.
		case eventReady:
			s.recoverReady(st.submitted, st.last)
		case eventFailed:
			s.installRecovered(recoveredMeta(st.submitted, st.last), nil)
			s.recovered.Failed++
		case eventSubmitted:
			rec := st.last
			meta := recoveredMeta(rec, nil)
			meta.Status = StatusFailed
			meta.Error = "build interrupted by restart: the process died mid-build"
			s.installRecovered(meta, nil)
			s.recovered.Interrupted++
			slog.Warn("release was mid-build at crash time; re-failed", "component", "release", "dir", s.dir, "release_id", rec.ID)
		}
	}
}

// recoverReady loads one ready record's snapshot file; decode failures
// demote the release to failed with the reason, logged. submitted (may
// be nil for registered snapshots) backfills metadata when the ready
// record's Meta no longer unmarshals.
func (s *Store) recoverReady(submitted, rec *manifestRecord) {
	meta := recoveredMeta(submitted, rec)
	fail := func(err error) {
		meta.Status = StatusFailed
		meta.Persisted = false // the recorded Meta says true; the disk disagrees
		meta.Error = fmt.Sprintf("snapshot unrecoverable: %v", err)
		s.installRecovered(meta, nil)
		s.recovered.Corrupt++
		slog.Warn("skipping unrecoverable release", "component", "release", "dir", s.dir, "release_id", rec.ID, "err", err)
	}
	name := rec.File
	if name == "" || name != filepath.Base(name) {
		fail(fmt.Errorf("manifest names invalid snapshot file %q", name))
		return
	}
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		fail(err)
		return
	}
	decodeStart := time.Now()
	snap, spec, err := DecodeSnapshot(data)
	s.stages.Observe("store.snapshot_decode", time.Since(decodeStart))
	if err != nil {
		fail(err)
		return
	}
	if meta.Spec.Method == "" && spec.Method != "" {
		meta.Spec = spec
	}
	// When the ready record's Meta failed to unmarshal (e.g. a spec from
	// a method this binary no longer registers), the fallback metadata
	// lacks the build-derived fields; the snapshot itself can supply
	// them. No-ops when the recorded Meta decoded intact.
	if meta.Rows == 0 {
		meta.Rows = snap.Release.Rows
	}
	if meta.NumECs == 0 {
		meta.NumECs = snap.NumECs()
	}
	if meta.AIL == 0 {
		meta.AIL = snap.AIL()
	}
	if meta.ReadyAt.IsZero() {
		meta.ReadyAt = rec.Time
	}
	meta.Status = StatusReady
	meta.Persisted = true
	s.installRecovered(meta, snap)
	s.recovered.Ready++
}

// recoveredMeta rebuilds a release's metadata from its manifest records:
// the full Meta JSON of a ready record when present, otherwise the
// submitted/failed fields.
func recoveredMeta(submitted, last *manifestRecord) Meta {
	if last != nil && len(last.Meta) > 0 {
		var meta Meta
		if err := json.Unmarshal(last.Meta, &meta); err == nil && meta.ID == last.ID {
			return meta
		}
	}
	rec := last
	if submitted != nil {
		rec = submitted
	}
	meta := Meta{ID: rec.ID, Version: rec.Version, Rows: rec.Rows, CreatedAt: rec.Time}
	if len(rec.Spec) > 0 {
		// A spec that no longer decodes (e.g. a method unregistered since)
		// costs only the metadata echo, not the recovery.
		_ = json.Unmarshal(rec.Spec, &meta.Spec)
	}
	if last != nil && last.Event == eventFailed {
		meta.Status = StatusFailed
		meta.Error = last.Error
	}
	return meta
}

// installRecovered places a recovered release into the catalog. Only
// called from replay, before the store is shared.
func (s *Store) installRecovered(meta Meta, snap *Snapshot) {
	s.byID[meta.ID] = &record{meta: meta, snap: snap}
}

// snapshotFileName is the on-disk name of a release's snapshot.
func snapshotFileName(id string) string { return id + ".snap" }

// persistSnapshot encodes and atomically installs a release's snapshot
// file: write to a temporary sibling, fsync, rename into place, fsync
// the directory. A crash leaves either the previous state or the
// complete new file, never a torn snapshot under the final name.
func (s *Store) persistSnapshot(id string, snap *Snapshot, spec Spec) (string, error) {
	encodeStart := time.Now()
	data, err := EncodeSnapshot(snap, spec)
	s.stages.Observe("store.snapshot_encode", time.Since(encodeStart))
	if err != nil {
		return "", err
	}
	writeStart := time.Now()
	defer func() { s.stages.Observe("store.snapshot_write", time.Since(writeStart)) }()
	name := snapshotFileName(id)
	final := filepath.Join(s.dir, name)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := syncDir(s.dir); err != nil {
		return "", err
	}
	return name, nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Durable reports whether the store persists releases to disk.
func (s *Store) Durable() bool { return s.man != nil }

// Dir returns the data directory of a durable store ("" otherwise).
func (s *Store) Dir() string { return s.dir }

// Recovery returns what Open reconstructed; zero for memory-only stores
// and for durable stores opened on a fresh directory.
func (s *Store) Recovery() RecoveryStats { return s.recovered }

// DiskSize walks the data directory and returns the total bytes it
// holds (snapshots plus manifest); 0 for memory-only stores.
func (s *Store) DiskSize() int64 {
	if s.dir == "" {
		return 0
	}
	var total int64
	_ = filepath.WalkDir(s.dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}

// appendSubmitted records an accepted submission. Called under s.mu, so
// the manifest line is durable before Submit returns the release ID.
func (s *Store) appendSubmitted(meta Meta) error {
	specJSON, err := json.Marshal(meta.Spec)
	if err != nil {
		return err
	}
	return s.man.append(manifestRecord{
		Event:   eventSubmitted,
		ID:      meta.ID,
		Version: meta.Version,
		Spec:    specJSON,
		Rows:    meta.Rows,
	})
}

// finishDurable persists a completed build: the snapshot file first,
// then the fsynced manifest record, and only then may the caller flip
// the in-memory status to ready. A persistence failure converts the
// build into a terminal failure — on a durable store, ready means
// on disk.
func (s *Store) finishDurable(meta *Meta, snap *Snapshot) error {
	name, err := s.persistSnapshot(meta.ID, snap, meta.Spec)
	if err != nil {
		return fmt.Errorf("persisting snapshot: %w", err)
	}
	meta.Persisted = true
	metaJSON, err := json.Marshal(*meta)
	if err != nil {
		return fmt.Errorf("persisting snapshot: %w", err)
	}
	if err := s.man.append(manifestRecord{
		Event:   eventReady,
		ID:      meta.ID,
		Version: meta.Version,
		File:    name,
		Meta:    metaJSON,
	}); err != nil {
		// Without its ready record the file is unreachable by recovery;
		// reclaim it rather than leaving an orphan in the data dir.
		os.Remove(filepath.Join(s.dir, name))
		meta.Persisted = false
		return fmt.Errorf("persisting snapshot: %w", err)
	}
	return nil
}

// appendTerminal best-effort records a terminal outcome (failed, or
// rejected-before-activation); the in-memory state is authoritative for
// the current process either way.
func (s *Store) appendTerminal(event string, meta Meta) {
	if err := s.man.append(manifestRecord{
		Event:   event,
		ID:      meta.ID,
		Version: meta.Version,
		Error:   meta.Error,
	}); err != nil && !errors.Is(err, errManifestClosed) {
		slog.Error("recording terminal event", "component", "release", "event", event, "release_id", meta.ID, "err", err)
	}
}
