package release

import (
	"math"
	bits64 "math/bits"
	"slices"

	"repro/internal/hilbert"
	"repro/internal/microdata"
)

// CanonicalizeECs permutes a published EC set into the canonical serving
// order — the Hilbert order BuildIndex imposes on every snapshot it
// indexes. Callers comparing an independently rebuilt release against a
// served one (the evaluation service's reproduce check) canonicalize
// both sides with this instead of inventing an ad-hoc sort; the
// permutation is deterministic and idempotent, so it is safe to apply to
// either side any number of times.
func CanonicalizeECs(schema *microdata.Schema, ecs []microdata.PublishedEC) {
	hilbertOrder(schema, ecs)
}

// hilbertOrder permutes a published EC set in place into ascending Hilbert
// order of its bounding-box centroids over the schema's QI domain. After
// the remap, the IDs inside any grid cell's candidate list are runs of
// curve-adjacent ECs, so the mark writes of the pruning passes and the
// column reads of the verification loop land on neighbouring cache lines
// instead of striding across the whole store.
//
// The permutation is pure bookkeeping: every estimator answers identically
// under any EC order (the differential fuzzer pins this), and because the
// sort is stable with the original position as tiebreak it is both
// deterministic and idempotent — re-sorting already-ordered ECs is the
// identity, which keeps encode(decode(x)) a byte fixpoint and golden
// encodes stable.
func hilbertOrder(schema *microdata.Schema, ecs []microdata.PublishedEC) {
	d := len(schema.QI)
	if d < 1 || len(ecs) < 2 {
		return
	}
	// 10 bits per dimension (1024 curve positions) is already finer than
	// the finest grid (MaxGridCells = 4096 applies per dimension, but the
	// serving grids top out at 512 cells); more resolution would only
	// lengthen the encode's bit-interleaving loop without improving
	// locality.
	bits := 63 / d
	if bits > 10 {
		bits = 10
	}
	if bits < 1 {
		return // more than 63 dimensions: curve index would not fit
	}
	curve, err := hilbert.New(d, bits)
	if err != nil {
		return
	}
	lo, hi := make([]float64, d), make([]float64, d)
	for j, a := range schema.QI {
		if a.Kind == microdata.Numeric {
			lo[j], hi[j] = a.Min, a.Max
		} else {
			lo[j], hi[j] = 0, float64(a.Hierarchy.NumLeaves()-1)
		}
	}
	m, err := hilbert.NewMapper(curve, lo, hi)
	if err != nil {
		return
	}
	// Pack (curve key, original index) into one uint64 per EC so a plain
	// slices.Sort orders them: stable by construction (the index breaks
	// ties), no comparator indirection. The packing needs d·bits key bits
	// plus idxBits position bits; bits was capped above so the key fits in
	// 63, and idxBits shrinks the key further only for enormous stores.
	idxBits := bits64.Len(uint(len(ecs) - 1))
	if d*bits+idxBits > 64 {
		bits = (64 - idxBits) / d
		if bits < 1 {
			return
		}
		curve, err = hilbert.New(d, bits)
		if err != nil {
			return
		}
		m, err = hilbert.NewMapper(curve, lo, hi)
		if err != nil {
			return
		}
	}
	keys := make([]uint64, len(ecs))
	pt := make([]float64, d)
	buf := make([]uint32, d)
	for i := range ecs {
		box := &ecs[i].Box
		for j := 0; j < d; j++ {
			c := 0.5 * (box.Lo[j] + box.Hi[j])
			if math.IsNaN(c) { // hand-built box with infinite bounds
				c = lo[j]
			}
			pt[j] = c
		}
		keys[i] = m.IndexInto(pt, buf)<<idxBits | uint64(i)
	}
	slices.Sort(keys)
	idxMask := uint64(1)<<idxBits - 1
	out := make([]microdata.PublishedEC, len(ecs))
	for i, k := range keys {
		out[i] = ecs[k&idxMask]
	}
	copy(ecs, out)
}
