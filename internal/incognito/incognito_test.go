package incognito

import (
	"testing"

	"repro/internal/census"
	"repro/internal/likeness"
	"repro/internal/microdata"
	"repro/internal/mondrian"
)

func sample(t *testing.T, n, qi int) *microdata.Table {
	t.Helper()
	return census.Generate(census.Options{N: n, Seed: 42}).Project(qi)
}

func TestKAnonymity(t *testing.T) {
	tab := sample(t, 5000, 3)
	res, err := Anonymize(tab, mondrian.KAnonymity{K: 25})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := res.Partition.MinECSize(); got < 25 {
		t.Fatalf("min EC size %d < 25", got)
	}
	if len(res.Levels) != 3 {
		t.Fatalf("levels = %v", res.Levels)
	}
}

// TestFullDomainProperty: under full-domain recoding, every EC has
// identical generalized QI values — so two tuples in different ECs must
// differ in at least one generalized coordinate.
func TestFullDomainProperty(t *testing.T) {
	tab := sample(t, 2000, 2)
	res, err := Anonymize(tab, mondrian.KAnonymity{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for i := range res.Partition.ECs {
		for _, r := range res.Partition.ECs[i].Rows {
			k := groupKey(tab, tab.Tuples[r], res.Levels)
			if ec, ok := seen[k]; ok && ec != i {
				t.Fatalf("group key %q spans ECs %d and %d", k, ec, i)
			}
			seen[k] = i
		}
	}
}

func TestBetaLikeness(t *testing.T) {
	tab := sample(t, 10000, 3)
	model, err := likeness.NewModel(4, tab)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Anonymize(tab, mondrian.BetaLikeness{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if ok, bad := model.CheckPartition(res.Partition); !ok {
		t.Fatalf("EC %d violates β-likeness", bad)
	}
	// The paper's premise: algorithms not designed for β-likeness pay a
	// lot of information loss. Full-domain recoding should be far above
	// BUREL-style losses at the same β (we only assert it is valid and
	// nontrivially coarse).
	if res.Loss < 0 || res.Loss > 1 {
		t.Fatalf("loss = %v", res.Loss)
	}
}

// TestLooserKNeverCoarser: raising k cannot yield a strictly finer
// recoding (the lattice search is loss-ordered).
func TestLooserKNeverCoarser(t *testing.T) {
	tab := sample(t, 3000, 2)
	r5, err := Anonymize(tab, mondrian.KAnonymity{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	r100, err := Anonymize(tab, mondrian.KAnonymity{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	if r100.Loss < r5.Loss {
		t.Fatalf("k=100 loss %v below k=5 loss %v", r100.Loss, r5.Loss)
	}
}

func TestIncognitoVsMondrianShape(t *testing.T) {
	// Mondrian's adaptive cuts should beat full-domain recoding on AIL
	// under the same constraint — the standard result.
	tab := sample(t, 5000, 3)
	inc, err := Anonymize(tab, mondrian.KAnonymity{K: 20})
	if err != nil {
		t.Fatal(err)
	}
	mon := mondrian.AnonymizeOpts(tab, mondrian.KAnonymity{K: 20}, mondrian.Options{RetryDimensions: true})
	if mon.AIL() > inc.Partition.AIL()+1e-9 {
		t.Errorf("Mondrian AIL %v above Incognito %v", mon.AIL(), inc.Partition.AIL())
	}
}

func TestEmptyTable(t *testing.T) {
	tab := microdata.NewTable(sample(t, 10, 2).Schema)
	if _, err := Anonymize(tab, mondrian.KAnonymity{K: 2}); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestRootAlwaysSatisfiesDistributionConstraints(t *testing.T) {
	tab := sample(t, 1000, 2)
	model, err := likeness.NewModel(1, tab)
	if err != nil {
		t.Fatal(err)
	}
	// β=1 on 1000 tuples is extremely strict; the search may climb to
	// the top of the lattice but must succeed there.
	res, err := Anonymize(tab, mondrian.BetaLikeness{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if ok, bad := model.CheckPartition(res.Partition); !ok {
		t.Fatalf("EC %d violates", bad)
	}
}
