// Package incognito implements full-domain generalization in the style of
// Incognito (LeFevre et al., SIGMOD 2005), the other family of
// k-anonymization algorithms the paper's related work builds on (§2 cites
// [17] alongside Mondrian [18] as the machinery behind the t-closeness
// schemes of [20]). Where Mondrian partitions the data space adaptively,
// full-domain recoding picks one generalization level per QI attribute and
// applies it uniformly: numeric attributes are coarsened into fixed-width
// bands, categorical attributes are cut at a hierarchy depth.
//
// The search enumerates the lattice of level vectors bottom-up (least
// general first, in total-loss order) and returns the least-loss vector
// whose induced equivalence classes satisfy the requested constraint — the
// same pluggable constraints used by package mondrian, so Incognito can be
// run under k-anonymity, ℓ-diversity, t-closeness, β-likeness, or
// δ-disclosure.
package incognito

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/microdata"
	"repro/internal/mondrian"
)

// LevelVector assigns one generalization level per QI attribute: 0 keeps
// raw values; for numeric attributes level ℓ merges the domain into
// ⌈card/2^ℓ⌉-value bands; for categorical attributes level ℓ cuts the
// hierarchy ℓ steps above the leaves.
type LevelVector []int

// Clone copies the vector.
func (lv LevelVector) Clone() LevelVector { return append(LevelVector(nil), lv...) }

// maxLevels returns the top level per attribute: for numeric attributes the
// number of halvings to a single band; for categorical ones the hierarchy
// height.
func maxLevels(s *microdata.Schema) []int {
	tops := make([]int, len(s.QI))
	for j, a := range s.QI {
		if a.Kind == microdata.Numeric {
			card := a.Cardinality()
			l := 0
			for (1 << uint(l)) < card {
				l++
			}
			tops[j] = l
		} else {
			tops[j] = a.Hierarchy.Height()
		}
	}
	return tops
}

// groupKey computes the generalized group index of a tuple under a level
// vector. Tuples with equal keys form one equivalence class.
func groupKey(t *microdata.Table, tp microdata.Tuple, lv LevelVector) string {
	key := make([]byte, 0, 4*len(lv))
	for j, a := range t.Schema.QI {
		var g int
		if a.Kind == microdata.Numeric {
			width := 1 << uint(lv[j])
			g = int(tp.QI[j]-a.Min) / width
		} else {
			node := a.Hierarchy.Leaf(int(tp.QI[j]))
			for l := 0; l < lv[j] && node.Parent() != nil; l++ {
				node = node.Parent()
			}
			lo, _ := node.LeafRange()
			g = lo
		}
		key = append(key, byte(g), byte(g>>8), byte(g>>16), '|')
	}
	return string(key)
}

// Result carries the chosen recoding and its induced partition.
type Result struct {
	Levels    LevelVector
	Partition *microdata.Partition
	// Loss is the schema-level information loss of the recoding: the
	// mean over attributes of (band width − 1)/(domain − 1) for numeric
	// and generalized-subtree leaf share for categorical attributes.
	Loss float64
}

// Anonymize searches the full-domain lattice for the least-loss level
// vector whose induced ECs all satisfy the constraint, and returns the
// partition. An error is returned only if even the fully generalized table
// (a single EC) fails — impossible for the distribution-based constraints,
// which the root always satisfies.
func Anonymize(t *microdata.Table, c mondrian.Constraint) (*Result, error) {
	if t.Len() == 0 {
		return nil, fmt.Errorf("incognito: empty table")
	}
	tops := maxLevels(t.Schema)

	// Enumerate all level vectors, cheapest loss first. Lattices here
	// are small: Π (top_j + 1) with tops ≤ 7 per attribute.
	var all []LevelVector
	var walk func(prefix LevelVector, j int)
	walk = func(prefix LevelVector, j int) {
		if j == len(tops) {
			all = append(all, prefix.Clone())
			return
		}
		for l := 0; l <= tops[j]; l++ {
			walk(append(prefix, l), j+1)
		}
	}
	walk(make(LevelVector, 0, len(tops)), 0)
	sort.Slice(all, func(a, b int) bool {
		la, lb := recodingLoss(t.Schema, all[a]), recodingLoss(t.Schema, all[b])
		if la != lb {
			return la < lb
		}
		return lexLess(all[a], all[b])
	})

	m := len(t.Schema.SA.Values)
	for _, lv := range all {
		part, ok := tryVector(t, lv, c, m)
		if ok {
			return &Result{Levels: lv, Partition: part, Loss: recodingLoss(t.Schema, lv)}, nil
		}
	}
	return nil, fmt.Errorf("incognito: no generalization level satisfies %s", c.Name())
}

// tryVector groups tuples under the vector and checks every EC.
func tryVector(t *microdata.Table, lv LevelVector, c mondrian.Constraint, m int) (*microdata.Partition, bool) {
	groups := make(map[string]*groupAgg)
	for r, tp := range t.Tuples {
		k := groupKey(t, tp, lv)
		g := groups[k]
		if g == nil {
			g = &groupAgg{counts: make([]int, m)}
			groups[k] = g
		}
		g.rows = append(g.rows, r)
		g.counts[tp.SA]++
	}
	part := &microdata.Partition{Table: t}
	for _, g := range groups {
		if !c.Allow(g.counts, len(g.rows)) {
			return nil, false
		}
		part.ECs = append(part.ECs, microdata.EC{Rows: g.rows})
	}
	part.SortECsBySize()
	return part, true
}

type groupAgg struct {
	rows   []int
	counts []int
}

// recodingLoss is the schema-level loss of a level vector (independent of
// the data): mean over attributes of the generalized cell extent share.
func recodingLoss(s *microdata.Schema, lv LevelVector) float64 {
	total := 0.0
	for j, a := range s.QI {
		if a.Kind == microdata.Numeric {
			card := float64(a.Cardinality())
			width := math.Min(float64(int(1)<<uint(lv[j])), card)
			total += (width - 1) / (card - 1)
		} else {
			// Average leaf share of the depth-cut ancestors, weighted
			// by subtree size.
			h := a.Hierarchy
			n := float64(h.NumLeaves())
			if lv[j] == 0 {
				continue
			}
			// Collect ancestor nodes at height lv[j] above leaves.
			share := 0.0
			for rank := 0; rank < h.NumLeaves(); {
				node := h.Leaf(rank)
				for l := 0; l < lv[j] && node.Parent() != nil; l++ {
					node = node.Parent()
				}
				cnt := node.LeafCount()
				if cnt > 1 {
					share += float64(cnt) * float64(cnt) / n // Σ over leaves of |leaves(a)|/n
				}
				rank += cnt
			}
			total += share / n
		}
	}
	return total / float64(len(s.QI))
}

func lexLess(a, b LevelVector) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
