// Package matrix provides the small dense linear-algebra kernel the
// perturbation scheme needs: solving PM·x = b and inverting PM, where PM is
// the m×m perturbation matrix of §5. Gaussian elimination with partial
// pivoting; m is the SA domain size (50 in the paper's CENSUS), so cubic
// cost is immaterial.
package matrix

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// New allocates a zero matrix.
func New(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m·v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if len(v) != m.Cols {
		return nil, fmt.Errorf("matrix: MulVec dims %d×%d · %d", m.Rows, m.Cols, len(v))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range v {
			s += row[j] * x
		}
		out[i] = s
	}
	return out, nil
}

// Mul returns m·n.
func (m *Matrix) Mul(n *Matrix) (*Matrix, error) {
	if m.Cols != n.Rows {
		return nil, fmt.Errorf("matrix: Mul dims %d×%d · %d×%d", m.Rows, m.Cols, n.Rows, n.Cols)
	}
	out := New(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < n.Cols; j++ {
				out.Data[i*out.Cols+j] += a * n.At(k, j)
			}
		}
	}
	return out, nil
}

// Solve returns x with a·x = b by Gaussian elimination with partial
// pivoting. a and b are not modified. Returns an error for singular or
// non-square systems.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("matrix: Solve needs square matrix, got %d×%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("matrix: Solve rhs length %d ≠ %d", len(b), a.Rows)
	}
	n := a.Rows
	// Augmented working copy.
	w := a.Clone()
	x := append([]float64(nil), b...)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		p, best := col, math.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(w.At(r, col)); v > best {
				p, best = r, v
			}
		}
		if best < 1e-300 {
			return nil, fmt.Errorf("matrix: singular at column %d", col)
		}
		if p != col {
			for j := 0; j < n; j++ {
				w.Data[col*n+j], w.Data[p*n+j] = w.Data[p*n+j], w.Data[col*n+j]
			}
			x[col], x[p] = x[p], x[col]
		}
		pivot := w.At(col, col)
		for r := col + 1; r < n; r++ {
			factor := w.At(r, col) / pivot
			if factor == 0 {
				continue
			}
			w.Set(r, col, 0)
			for j := col + 1; j < n; j++ {
				w.Data[r*n+j] -= factor * w.Data[col*n+j]
			}
			x[r] -= factor * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= w.At(i, j) * x[j]
		}
		x[i] = s / w.At(i, i)
	}
	return x, nil
}

// Inverse returns a⁻¹ via column-wise solves.
func Inverse(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("matrix: Inverse needs square matrix, got %d×%d", a.Rows, a.Cols)
	}
	n := a.Rows
	out := New(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := Solve(a, e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out.Set(i, j, col[i])
		}
	}
	return out, nil
}
