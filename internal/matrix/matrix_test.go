package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulVec(t *testing.T) {
	m := New(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	got, err := m.MulVec([]float64{1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v", got)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestMul(t *testing.T) {
	a := New(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	b := New(2, 2)
	copy(b.Data, []float64{0, 1, 1, 0})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 1, 4, 3}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("Mul = %v, want %v", c.Data, want)
		}
	}
	if _, err := a.Mul(New(3, 3)); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestSolveKnown(t *testing.T) {
	a := New(2, 2)
	copy(a.Data, []float64{2, 1, 1, 3})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 → x=1, y=3.
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("Solve = %v", x)
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Zero on the initial pivot: naive elimination would fail.
	a := New(2, 2)
	copy(a.Data, []float64{0, 1, 1, 0})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Fatalf("Solve = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := New(2, 2)
	copy(a.Data, []float64{1, 2, 2, 4})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Error("singular matrix solved")
	}
	if _, err := Solve(New(2, 3), []float64{1, 2}); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := Solve(New(2, 2), []float64{1}); err == nil {
		t.Error("rhs length mismatch accepted")
	}
}

func TestSolveLeavesInputsIntact(t *testing.T) {
	a := New(2, 2)
	copy(a.Data, []float64{2, 1, 1, 3})
	b := []float64{5, 10}
	aCopy := append([]float64(nil), a.Data...)
	bCopy := append([]float64(nil), b...)
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	for i := range aCopy {
		if a.Data[i] != aCopy[i] {
			t.Fatal("Solve modified the matrix")
		}
	}
	for i := range bCopy {
		if b[i] != bCopy[i] {
			t.Fatal("Solve modified the rhs")
		}
	}
}

func TestInverseIdentity(t *testing.T) {
	for n := 1; n <= 5; n++ {
		inv, err := Inverse(Identity(n))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(inv.At(i, j)-want) > 1e-12 {
					t.Fatalf("Inverse(I) ≠ I at (%d,%d)", i, j)
				}
			}
		}
	}
	if _, err := Inverse(New(2, 3)); err == nil {
		t.Error("non-square inverted")
	}
}

// Property: for random well-conditioned matrices, A·A⁻¹ ≈ I and
// Solve(A, A·x) ≈ x.
func TestInverseSolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := New(n, n)
		for i := range a.Data {
			a.Data[i] = r.Float64()*2 - 1
		}
		// Diagonal dominance keeps the matrix comfortably invertible.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()*10 - 5
		}
		b, err := a.MulVec(x)
		if err != nil {
			return false
		}
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8 {
				return false
			}
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		prod, err := a.Mul(inv)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(prod.At(i, j)-want) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Identity(2)
	b := a.Clone()
	b.Set(0, 0, 42)
	if a.At(0, 0) == 42 {
		t.Fatal("Clone shares storage")
	}
}
