package census

import (
	"math"
	"testing"

	"repro/internal/microdata"
)

func TestSchemaMatchesTable3(t *testing.T) {
	s := Schema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.QI) != 5 {
		t.Fatalf("QI count = %d, want 5", len(s.QI))
	}
	wantCard := []int{79, 2, 17, 6, 10} // Table 3 cardinalities
	wantKind := []microdata.Kind{microdata.Numeric, microdata.Categorical,
		microdata.Numeric, microdata.Categorical, microdata.Categorical}
	wantHeight := []int{0, 1, 0, 2, 3} // hierarchy heights for categoricals
	for i, a := range s.QI {
		if got := a.Cardinality(); got != wantCard[i] {
			t.Errorf("%s cardinality = %d, want %d", a.Name, got, wantCard[i])
		}
		if a.Kind != wantKind[i] {
			t.Errorf("%s kind = %v", a.Name, a.Kind)
		}
		if a.Kind == microdata.Categorical {
			if got := a.Hierarchy.Height(); got != wantHeight[i] {
				t.Errorf("%s hierarchy height = %d, want %d", a.Name, got, wantHeight[i])
			}
		}
	}
	if len(s.SA.Values) != 50 {
		t.Fatalf("SA domain = %d, want 50", len(s.SA.Values))
	}
}

func TestSalaryWeightsCalibration(t *testing.T) {
	w := SalaryWeights()
	sum, min, max := 0.0, w[0], w[0]
	for _, v := range w {
		sum += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
	// The §6 extremes: min ≈ 0.2018%, max ≈ 4.8402% (ratio ≈ 23.98 held
	// exactly; absolute values within 15% after normalization).
	if math.Abs(max/min-MaxSalaryFreq/MinSalaryFreq) > 1e-9 {
		t.Errorf("ratio = %v, want %v", max/min, MaxSalaryFreq/MinSalaryFreq)
	}
	if min < MinSalaryFreq*0.85 || min > MinSalaryFreq*1.15 {
		t.Errorf("min weight %v far from target %v", min, MinSalaryFreq)
	}
	if max < MaxSalaryFreq*0.85 || max > MaxSalaryFreq*1.15 {
		t.Errorf("max weight %v far from target %v", max, MaxSalaryFreq)
	}
}

func TestGenerateMarginalExact(t *testing.T) {
	tab := Generate(Options{N: 50000, Seed: 1})
	if tab.Len() != 50000 {
		t.Fatalf("N = %d", tab.Len())
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := tab.SACounts()
	want := apportion(SalaryWeights(), 50000)
	for i := range counts {
		if counts[i] != want[i] {
			t.Fatalf("class %d count = %d, want exactly %d", i, counts[i], want[i])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Options{N: 2000, Seed: 5})
	b := Generate(Options{N: 2000, Seed: 5})
	for i := range a.Tuples {
		if a.Tuples[i].SA != b.Tuples[i].SA {
			t.Fatal("SA differs under same seed")
		}
		for j := range a.Tuples[i].QI {
			if a.Tuples[i].QI[j] != b.Tuples[i].QI[j] {
				t.Fatal("QI differs under same seed")
			}
		}
	}
	c := Generate(Options{N: 2000, Seed: 6})
	same := true
	for i := range a.Tuples {
		if a.Tuples[i].SA != c.Tuples[i].SA {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical SA columns")
	}
}

// TestCorrelation: salary class must correlate positively with education
// (the generator's whole point), and the correlation must weaken as
// CorrelationNoise rises.
func TestCorrelation(t *testing.T) {
	corr := func(noise float64) float64 {
		tab := Generate(Options{N: 20000, Seed: 3, CorrelationNoise: noise})
		// Pearson correlation between education (QI index 2) and SA.
		var sx, sy, sxx, syy, sxy float64
		n := float64(tab.Len())
		for _, tp := range tab.Tuples {
			x, y := tp.QI[2], float64(tp.SA)
			sx += x
			sy += y
			sxx += x * x
			syy += y * y
			sxy += x * y
		}
		cov := sxy/n - sx/n*sy/n
		vx := sxx/n - sx/n*sx/n
		vy := syy/n - sy/n*sy/n
		return cov / math.Sqrt(vx*vy)
	}
	strong := corr(0.3)
	weak := corr(0.95)
	if strong < 0.35 {
		t.Errorf("strong correlation = %v, want ≥ 0.35", strong)
	}
	if weak >= strong {
		t.Errorf("noise 0.9 correlation (%v) not below noise 0.3 (%v)", weak, strong)
	}
}

func TestApportion(t *testing.T) {
	counts := apportion([]float64{0.5, 0.3, 0.2}, 10)
	if counts[0]+counts[1]+counts[2] != 10 {
		t.Fatalf("apportion sum = %v", counts)
	}
	if counts[0] != 5 || counts[1] != 3 || counts[2] != 2 {
		t.Fatalf("apportion = %v", counts)
	}
	// Remainder distribution: weights that don't divide evenly.
	counts = apportion([]float64{1.0 / 3, 1.0 / 3, 1.0 / 3}, 10)
	total := 0
	for _, c := range counts {
		total += c
		if c < 3 || c > 4 {
			t.Fatalf("apportion uneven = %v", counts)
		}
	}
	if total != 10 {
		t.Fatalf("apportion total = %d", total)
	}
}

func TestDefaults(t *testing.T) {
	tab := Generate(Options{N: 100, Seed: 1})
	if tab.Len() != 100 {
		t.Fatal("explicit N ignored")
	}
	// All QI values within their domains (Validate covers this, but assert
	// age bounds explicitly since clamping is load-bearing).
	for _, tp := range tab.Tuples {
		if tp.QI[0] < 17 || tp.QI[0] > 95 {
			t.Fatalf("age %v outside [17,95]", tp.QI[0])
		}
		if tp.QI[2] < 1 || tp.QI[2] > 17 {
			t.Fatalf("education %v outside [1,17]", tp.QI[2])
		}
	}
}
