// Package census generates a synthetic stand-in for the CENSUS dataset the
// paper evaluates on (Table 3: 500,000 tuples; Age 79 values, Gender 2
// [hierarchy height 1], Education Level 17, Marital Status 6 [height 2],
// Work Class 10 [height 3], Salary Class 50 as the SA). The real dataset
// (IPUMS) is not redistributable, so this generator reproduces the
// properties the experiments actually exercise:
//
//   - the schema and attribute cardinalities of Table 3,
//   - the SA frequency profile quoted in §6 (least frequent value
//     ≈ 0.2018%, most frequent ≈ 4.8402%), realized as a geometric ramp
//     over the 50 salary classes calibrated to those extremes, and
//   - mild rank correlation between salary class and (education, age), so
//     that the Naïve-Bayes attack and the query workloads see realistic
//     structure. The SA marginal is matched exactly by construction: class
//     counts are fixed first, then assigned to tuples by noisy score rank.
package census

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/hierarchy"
	"repro/internal/microdata"
)

// Options configures the generator.
type Options struct {
	// N is the number of tuples (default 500,000).
	N int
	// Seed makes generation deterministic.
	Seed int64
	// CorrelationNoise in (0,1] is the fraction of tuples whose salary
	// class is assigned independently of the QI values (the rest are
	// rank-assigned from an education/age score). Zero or negative
	// selects the default of 0.5. The mixture gives the conditional
	// distribution P(class | QI region) full support everywhere — every
	// class occurs in every region, reweighted — as real census data
	// does: coarse regions still deviate from the global distribution
	// (which drives the Baseline's error in Fig. 9), while rare classes
	// remain locally available (which keeps proportional ECs compact).
	CorrelationNoise float64
}

// MinSalaryFreq and MaxSalaryFreq are the target SA frequency extremes
// from §6 of the paper.
const (
	MinSalaryFreq = 0.002018
	MaxSalaryFreq = 0.048402
	SalaryClasses = 50
)

// Schema returns the CENSUS schema of Table 3.
func Schema() *microdata.Schema {
	gender := hierarchy.Flat("person", "male", "female")

	marital := hierarchy.MustNew(hierarchy.N("any-status",
		hierarchy.N("ever-married",
			hierarchy.N("married"),
			hierarchy.N("separated"),
			hierarchy.N("divorced"),
			hierarchy.N("widowed"),
		),
		hierarchy.N("never-married",
			hierarchy.N("single"),
			hierarchy.N("partnered"),
		),
	))

	work := hierarchy.MustNew(hierarchy.N("any-class",
		hierarchy.N("employed",
			hierarchy.N("private",
				hierarchy.N("private-for-profit"),
				hierarchy.N("private-nonprofit"),
			),
			hierarchy.N("government",
				hierarchy.N("federal-gov"),
				hierarchy.N("state-gov"),
				hierarchy.N("local-gov"),
			),
			hierarchy.N("self-employed",
				hierarchy.N("self-emp-inc"),
				hierarchy.N("self-emp-not-inc"),
			),
		),
		hierarchy.N("not-employed",
			hierarchy.N("jobless",
				hierarchy.N("unemployed"),
				hierarchy.N("never-worked"),
			),
			hierarchy.N("unpaid",
				hierarchy.N("without-pay"),
			),
		),
	))

	salary := make([]string, SalaryClasses)
	for i := range salary {
		salary[i] = salaryClassName(i)
	}

	return &microdata.Schema{
		QI: []microdata.Attribute{
			microdata.NumericAttr("Age", 17, 95),          // 79 distinct integer values
			microdata.CategoricalAttr("Gender", gender),   // height 1
			microdata.NumericAttr("Education", 1, 17),     // 17 distinct integer values
			microdata.CategoricalAttr("Marital", marital), // height 2
			microdata.CategoricalAttr("WorkClass", work),  // height 3
		},
		SA: microdata.SensitiveAttr{Name: "Salary", Values: salary},
	}
}

func salaryClassName(i int) string {
	return "class-" + itoa2(i+1)
}

func itoa2(v int) string {
	if v < 10 {
		return string([]byte{'0', byte('0' + v)})
	}
	return string([]byte{byte('0' + v/10), byte('0' + v%10)})
}

// SalaryWeights returns the calibrated SA marginal: a monotone ramp
// w_i = min + (max−min)·g_i with g a normalized geometric profile, where
// the curvature of g is solved numerically so that the weights sum to 1
// while w_0 and w_49 hit the §6 extremes (0.2018% and 4.8402%) exactly.
func SalaryWeights() []float64 {
	m := SalaryClasses
	a := MaxSalaryFreq - MinSalaryFreq
	target := (1 - float64(m)*MinSalaryFreq) / a // required Σ g_i

	// g_i(r) = (r^i − 1)/(r^{m−1} − 1) is 0 at i=0, 1 at i=m−1, and its
	// sum decreases continuously from m/2 (r→1) toward 1 (r→∞); bisect
	// on r to hit the target sum.
	sumG := func(r float64) float64 {
		den := math.Pow(r, float64(m-1)) - 1
		s := 0.0
		for i := 0; i < m; i++ {
			s += (math.Pow(r, float64(i)) - 1) / den
		}
		return s
	}
	lo, hi := 1.0000001, 4.0
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if sumG(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	r := (lo + hi) / 2
	den := math.Pow(r, float64(m-1)) - 1
	w := make([]float64, m)
	for i := range w {
		w[i] = MinSalaryFreq + a*(math.Pow(r, float64(i))-1)/den
	}
	return w
}

// Generate builds the synthetic table.
func Generate(opts Options) *microdata.Table {
	if opts.N <= 0 {
		opts.N = 500000
	}
	if opts.CorrelationNoise <= 0 {
		opts.CorrelationNoise = 0.5
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	schema := Schema()
	t := microdata.NewTable(schema)
	t.Tuples = make([]microdata.Tuple, opts.N)

	scores := make([]scored, opts.N)

	for i := 0; i < opts.N; i++ {
		// Age: working-age bulge via a clipped mixture of normals.
		age := math.Round(clamp(mixAge(rng), 17, 95))
		// Gender ≈ uniform.
		gender := float64(rng.Intn(2))
		// Education: correlated with age cohort; younger cohorts skew
		// higher (triangular around a cohort-dependent mode).
		eduMode := 9.0 + 4.0*(1-math.Abs(age-40)/40)
		edu := math.Round(clamp(eduMode+rng.NormFloat64()*3, 1, 17))
		// Marital status: age-dependent.
		marital := float64(maritalFor(age, rng))
		// Work class: loosely age- and education-dependent.
		work := float64(workFor(age, edu, rng))

		t.Tuples[i] = microdata.Tuple{QI: []float64{age, gender, edu, marital, work}}

		// Salary score: education and age drive the class, with a
		// small jitter so equal QI combinations do not tie.
		base := 0.6*(edu-1)/16 + 0.4*(age-17)/78
		scores[i] = scored{i, base + 0.1*rng.Float64()}
	}

	// Exact-marginal mixture assignment: the class counts are fixed from
	// the calibrated weights, then split between a rank-correlated
	// subset (fraction 1−CorrelationNoise, classes assigned by score
	// order) and an independent subset (classes shuffled uniformly).
	counts := apportion(SalaryWeights(), opts.N)
	corrIdx := make([]scored, 0, opts.N)
	randIdx := make([]int, 0, opts.N)
	for _, s := range scores {
		if rng.Float64() < opts.CorrelationNoise {
			randIdx = append(randIdx, s.idx)
		} else {
			corrIdx = append(corrIdx, s)
		}
	}
	// Split each class's quota proportionally between the two subsets.
	corrCounts := make([]int, SalaryClasses)
	randCounts := make([]int, SalaryClasses)
	{
		corrShare := float64(len(corrIdx)) / float64(opts.N)
		given := 0
		for k, n := range counts {
			corrCounts[k] = int(float64(n)*corrShare + 0.5)
			given += corrCounts[k]
		}
		// Repair rounding so Σ corrCounts = len(corrIdx).
		for k := 0; given > len(corrIdx); k = (k + 1) % SalaryClasses {
			if corrCounts[k] > 0 {
				corrCounts[k]--
				given--
			}
		}
		for k := 0; given < len(corrIdx); k = (k + 1) % SalaryClasses {
			if corrCounts[k] < counts[k] {
				corrCounts[k]++
				given++
			}
		}
		for k := range counts {
			randCounts[k] = counts[k] - corrCounts[k]
		}
	}
	// Correlated subset: classes by score rank.
	sort.Slice(corrIdx, func(a, b int) bool {
		if corrIdx[a].score != corrIdx[b].score {
			return corrIdx[a].score < corrIdx[b].score
		}
		return corrIdx[a].idx < corrIdx[b].idx
	})
	k, boundary := 0, corrCounts[0]
	for given, s := range corrIdx {
		for k < SalaryClasses-1 && given >= boundary {
			k++
			boundary += corrCounts[k]
		}
		t.Tuples[s.idx].SA = k
	}
	// Independent subset: classes in a random permutation.
	pool := make([]int, 0, len(randIdx))
	for k, n := range randCounts {
		for j := 0; j < n; j++ {
			pool = append(pool, k)
		}
	}
	rng.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
	for i, idx := range randIdx {
		t.Tuples[idx].SA = pool[i]
	}
	return t
}

// scored pairs a tuple index with its salary-assignment score.
type scored struct {
	idx   int
	score float64
}

// apportion turns weights into integer counts summing exactly to n
// (largest-remainder method).
func apportion(w []float64, n int) []int {
	counts := make([]int, len(w))
	type rem struct {
		i int
		f float64
	}
	rems := make([]rem, len(w))
	total := 0
	for i, wi := range w {
		exact := wi * float64(n)
		counts[i] = int(exact)
		rems[i] = rem{i, exact - float64(counts[i])}
		total += counts[i]
	}
	// Distribute the leftover to the largest remainders.
	for i := 0; i < len(rems); i++ {
		for j := i + 1; j < len(rems); j++ {
			if rems[j].f > rems[i].f {
				rems[i], rems[j] = rems[j], rems[i]
			}
		}
	}
	for i := 0; total < n; i, total = i+1, total+1 {
		counts[rems[i%len(rems)].i]++
	}
	return counts
}

func mixAge(rng *rand.Rand) float64 {
	switch u := rng.Float64(); {
	case u < 0.55:
		return 38 + rng.NormFloat64()*11
	case u < 0.85:
		return 58 + rng.NormFloat64()*9
	default:
		return 24 + rng.NormFloat64()*5
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// maritalFor returns a marital-status leaf rank. Leaf pre-order:
// 0 married, 1 separated, 2 divorced, 3 widowed, 4 single, 5 partnered.
func maritalFor(age float64, rng *rand.Rand) int {
	u := rng.Float64()
	switch {
	case age < 25:
		return pick(u, []float64{0.10, 0.01, 0.01, 0.00, 0.70, 0.18})
	case age < 45:
		return pick(u, []float64{0.55, 0.03, 0.10, 0.01, 0.20, 0.11})
	case age < 65:
		return pick(u, []float64{0.62, 0.03, 0.15, 0.05, 0.10, 0.05})
	default:
		return pick(u, []float64{0.55, 0.02, 0.10, 0.25, 0.05, 0.03})
	}
}

// workFor returns a work-class leaf rank. Leaf pre-order:
// 0 private-for-profit, 1 private-nonprofit, 2 federal, 3 state, 4 local,
// 5 self-emp-inc, 6 self-emp-not-inc, 7 unemployed, 8 never-worked,
// 9 without-pay.
func workFor(age, edu float64, rng *rand.Rand) int {
	u := rng.Float64()
	if age >= 70 {
		return pick(u, []float64{0.25, 0.05, 0.02, 0.03, 0.04, 0.06, 0.10, 0.30, 0.05, 0.10})
	}
	if edu >= 13 {
		return pick(u, []float64{0.45, 0.12, 0.06, 0.07, 0.08, 0.07, 0.08, 0.05, 0.01, 0.01})
	}
	return pick(u, []float64{0.52, 0.06, 0.03, 0.04, 0.06, 0.03, 0.10, 0.12, 0.02, 0.02})
}

func pick(u float64, w []float64) int {
	c := 0.0
	for i, wi := range w {
		c += wi
		if u <= c {
			return i
		}
	}
	return len(w) - 1
}
