// Package hilbert implements a d-dimensional Hilbert space-filling curve.
// BUREL (§4.5 of the β-likeness paper) sorts the tuples of each bucket by
// their Hilbert index so that neighbours on the 1-D curve are likely
// neighbours in QI space, and forms equivalence classes from curve-adjacent
// tuples to keep bounding boxes small.
//
// The implementation follows Skilling, "Programming the Hilbert curve"
// (AIP Conf. Proc. 707, 2004): coordinates are converted to and from the
// "transposed" index form with O(d·b) bit operations.
package hilbert

import "fmt"

// Curve maps between d-dimensional grid points with b bits per dimension
// and positions on the Hilbert curve. d·b must not exceed 63 so that the
// index fits in a uint64.
type Curve struct {
	dims int
	bits int
}

// New constructs a curve over dims dimensions with bits bits per dimension.
func New(dims, bits int) (*Curve, error) {
	if dims < 1 {
		return nil, fmt.Errorf("hilbert: dims must be ≥1, got %d", dims)
	}
	if bits < 1 || bits > 32 {
		return nil, fmt.Errorf("hilbert: bits must be in [1,32], got %d", bits)
	}
	if dims*bits > 63 {
		return nil, fmt.Errorf("hilbert: dims*bits = %d exceeds 63", dims*bits)
	}
	return &Curve{dims: dims, bits: bits}, nil
}

// MustNew is New but panics on error.
func MustNew(dims, bits int) *Curve {
	c, err := New(dims, bits)
	if err != nil {
		panic(err)
	}
	return c
}

// Dims returns the dimensionality of the curve.
func (c *Curve) Dims() int { return c.dims }

// Bits returns the per-dimension resolution in bits.
func (c *Curve) Bits() int { return c.bits }

// Max returns the exclusive upper bound of each coordinate (2^bits).
func (c *Curve) Max() uint32 { return 1 << uint(c.bits) }

// Encode returns the Hilbert index of the grid point. Coordinates must be
// below Max; len(coords) must equal Dims. The input slice is not modified.
func (c *Curve) Encode(coords []uint32) uint64 {
	if len(coords) != c.dims {
		panic(fmt.Sprintf("hilbert: Encode got %d coords, want %d", len(coords), c.dims))
	}
	x := make([]uint32, c.dims)
	copy(x, coords)
	c.axesToTranspose(x)
	return c.interleave(x)
}

// Decode returns the grid point at the given Hilbert index.
func (c *Curve) Decode(h uint64) []uint32 {
	x := c.deinterleave(h)
	c.transposeToAxes(x)
	return x
}

// axesToTranspose converts coordinates to the transposed Hilbert form
// in place (Skilling's AxestoTranspose).
func (c *Curve) axesToTranspose(x []uint32) {
	n := c.dims
	m := uint32(1) << uint(c.bits-1)
	// Inverse undo excess work.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p // invert
			} else { // exchange
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes is the inverse of axesToTranspose.
func (c *Curve) transposeToAxes(x []uint32) {
	n := c.dims
	m := uint32(2) << uint(c.bits-1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != m; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// interleave packs the transposed form into a single index: bit (bits-1-k)
// of each dimension in turn forms the next most significant index bits.
func (c *Curve) interleave(x []uint32) uint64 {
	var h uint64
	for k := c.bits - 1; k >= 0; k-- {
		for i := 0; i < c.dims; i++ {
			h = (h << 1) | uint64((x[i]>>uint(k))&1)
		}
	}
	return h
}

// deinterleave unpacks an index into the transposed form.
func (c *Curve) deinterleave(h uint64) []uint32 {
	x := make([]uint32, c.dims)
	total := c.dims * c.bits
	for pos := 0; pos < total; pos++ {
		bit := (h >> uint(total-1-pos)) & 1
		dim := pos % c.dims
		k := c.bits - 1 - pos/c.dims
		x[dim] |= uint32(bit) << uint(k)
	}
	return x
}

// Mapper converts real-valued points in a known box to grid coordinates and
// Hilbert indices. Each dimension i is scaled from [lo[i], hi[i]] onto the
// curve's grid; degenerate dimensions (lo == hi) map to 0.
type Mapper struct {
	Curve  *Curve
	Lo, Hi []float64
	scale  []float64
}

// NewMapper builds a Mapper over the given box.
func NewMapper(c *Curve, lo, hi []float64) (*Mapper, error) {
	if len(lo) != c.dims || len(hi) != c.dims {
		return nil, fmt.Errorf("hilbert: box dims %d/%d, curve dims %d", len(lo), len(hi), c.dims)
	}
	m := &Mapper{Curve: c, Lo: lo, Hi: hi, scale: make([]float64, c.dims)}
	maxCoord := float64(c.Max() - 1)
	for i := range lo {
		if hi[i] > lo[i] {
			m.scale[i] = maxCoord / (hi[i] - lo[i])
		}
	}
	return m, nil
}

// Index returns the Hilbert index of the real-valued point, clamping each
// coordinate into the mapper's box.
func (m *Mapper) Index(point []float64) uint64 {
	return m.IndexInto(point, make([]uint32, m.Curve.dims))
}

// IndexInto is Index with a caller-supplied coordinate buffer, for loops
// that index many points without allocating. buf must have length
// Curve.Dims(); its contents are clobbered.
func (m *Mapper) IndexInto(point []float64, buf []uint32) uint64 {
	if len(buf) != m.Curve.dims {
		panic(fmt.Sprintf("hilbert: IndexInto buffer of %d, want %d", len(buf), m.Curve.dims))
	}
	for i, v := range point {
		if v < m.Lo[i] {
			v = m.Lo[i]
		}
		if v > m.Hi[i] {
			v = m.Hi[i]
		}
		buf[i] = uint32((v - m.Lo[i]) * m.scale[i])
	}
	m.Curve.axesToTranspose(buf)
	return m.Curve.interleave(buf)
}
