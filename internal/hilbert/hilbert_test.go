package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		dims, bits int
		ok         bool
	}{
		{1, 1, true},
		{2, 16, true},
		{5, 12, true},  // 60 bits
		{5, 13, false}, // 65 bits
		{0, 4, false},
		{2, 0, false},
		{2, 33, false},
		{63, 1, true},
		{64, 1, false},
	}
	for _, c := range cases {
		_, err := New(c.dims, c.bits)
		if (err == nil) != c.ok {
			t.Errorf("New(%d,%d): err=%v, want ok=%v", c.dims, c.bits, err, c.ok)
		}
	}
}

// TestOrder1D: in one dimension the Hilbert curve is the identity.
func TestOrder1D(t *testing.T) {
	c := MustNew(1, 4)
	for v := uint32(0); v < 16; v++ {
		if got := c.Encode([]uint32{v}); got != uint64(v) {
			t.Fatalf("Encode([%d]) = %d", v, got)
		}
	}
}

// TestKnown2D checks the first-order 2-D curve: the four cells are visited
// in the classic (0,0) → (0,1) → (1,1) → (1,0) U-shape (x, y order per
// Skilling's convention).
func TestKnown2D(t *testing.T) {
	c := MustNew(2, 1)
	seen := make(map[uint64][]uint32)
	for x := uint32(0); x < 2; x++ {
		for y := uint32(0); y < 2; y++ {
			h := c.Encode([]uint32{x, y})
			if h > 3 {
				t.Fatalf("index %d out of range", h)
			}
			seen[h] = []uint32{x, y}
		}
	}
	if len(seen) != 4 {
		t.Fatalf("indices not distinct: %v", seen)
	}
	// Consecutive curve positions must be grid neighbours.
	for h := uint64(0); h < 3; h++ {
		a, b := seen[h], seen[h+1]
		d := absDiff(a[0], b[0]) + absDiff(a[1], b[1])
		if d != 1 {
			t.Errorf("positions %d and %d not adjacent: %v %v", h, h+1, a, b)
		}
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

// TestRoundTrip: Decode(Encode(x)) == x over exhaustive small grids.
func TestRoundTrip(t *testing.T) {
	for _, cfg := range []struct{ dims, bits int }{{2, 3}, {3, 2}, {4, 2}, {5, 2}} {
		c := MustNew(cfg.dims, cfg.bits)
		n := uint64(1) << uint(cfg.dims*cfg.bits)
		for h := uint64(0); h < n; h++ {
			x := c.Decode(h)
			if got := c.Encode(x); got != h {
				t.Fatalf("dims=%d bits=%d: Encode(Decode(%d)) = %d", cfg.dims, cfg.bits, h, got)
			}
		}
	}
}

// TestBijection: all indices of an exhaustive grid are distinct and cover
// the full range (Hilbert curve is a bijection).
func TestBijection(t *testing.T) {
	c := MustNew(3, 2)
	seen := make(map[uint64]bool)
	var rec func(coords []uint32, d int)
	rec = func(coords []uint32, d int) {
		if d == 3 {
			h := c.Encode(coords)
			if seen[h] {
				t.Fatalf("duplicate index %d for %v", h, coords)
			}
			seen[h] = true
			return
		}
		for v := uint32(0); v < 4; v++ {
			coords[d] = v
			rec(coords, d+1)
		}
	}
	rec(make([]uint32, 3), 0)
	if len(seen) != 64 {
		t.Fatalf("covered %d of 64 indices", len(seen))
	}
}

// TestAdjacency: consecutive curve positions differ by exactly 1 in exactly
// one coordinate — the defining locality property of the Hilbert curve.
func TestAdjacency(t *testing.T) {
	for _, cfg := range []struct{ dims, bits int }{{2, 4}, {3, 3}} {
		c := MustNew(cfg.dims, cfg.bits)
		n := uint64(1) << uint(cfg.dims*cfg.bits)
		prev := c.Decode(0)
		for h := uint64(1); h < n; h++ {
			cur := c.Decode(h)
			diff := uint32(0)
			for i := range cur {
				diff += absDiff(cur[i], prev[i])
			}
			if diff != 1 {
				t.Fatalf("dims=%d bits=%d: steps %d→%d move %d cells (%v → %v)",
					cfg.dims, cfg.bits, h-1, h, diff, prev, cur)
			}
			prev = cur
		}
	}
}

// Property: round trip holds for random coordinates on larger grids.
func TestRoundTripProperty(t *testing.T) {
	c := MustNew(5, 12)
	f := func(a, b, x, y, z uint32) bool {
		coords := []uint32{a % 4096, b % 4096, x % 4096, y % 4096, z % 4096}
		dec := c.Decode(c.Encode(coords))
		for i := range coords {
			if dec[i] != coords[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEncodePanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Encode with wrong dims did not panic")
		}
	}()
	MustNew(2, 4).Encode([]uint32{1})
}

func TestMapper(t *testing.T) {
	c := MustNew(2, 8)
	m, err := NewMapper(c, []float64{0, 0}, []float64{10, 10})
	if err != nil {
		t.Fatalf("NewMapper: %v", err)
	}
	// Clamping: outside points map like boundary points.
	if m.Index([]float64{-5, 0}) != m.Index([]float64{0, 0}) {
		t.Error("low clamp failed")
	}
	if m.Index([]float64{15, 10}) != m.Index([]float64{10, 10}) {
		t.Error("high clamp failed")
	}
	// Nearby points get nearby (often equal) grid cells: same corner maps
	// to same index.
	if m.Index([]float64{3, 3}) != m.Index([]float64{3.0000001, 3}) {
		t.Error("tiny perturbation changed cell")
	}
	// Degenerate dimension is tolerated.
	dm, err := NewMapper(MustNew(2, 4), []float64{0, 5}, []float64{10, 5})
	if err != nil {
		t.Fatalf("degenerate NewMapper: %v", err)
	}
	_ = dm.Index([]float64{3, 5})

	if _, err := NewMapper(c, []float64{0}, []float64{1, 2}); err == nil {
		t.Error("dims mismatch accepted")
	}
}

// TestMapperLocality: points close in space should have closer curve
// indices, on average, than far-apart points — the property BUREL relies
// on. Verified statistically over random pairs.
func TestMapperLocality(t *testing.T) {
	c := MustNew(2, 10)
	m, _ := NewMapper(c, []float64{0, 0}, []float64{1, 1})
	rng := rand.New(rand.NewSource(9))
	var sumNear, sumFar float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		x, y := rng.Float64(), rng.Float64()
		nearX := clamp01(x + (rng.Float64()-0.5)*0.01)
		nearY := clamp01(y + (rng.Float64()-0.5)*0.01)
		farX, farY := rng.Float64(), rng.Float64()
		h := m.Index([]float64{x, y})
		sumNear += absU64(h, m.Index([]float64{nearX, nearY}))
		sumFar += absU64(h, m.Index([]float64{farX, farY}))
	}
	if sumNear >= sumFar/4 {
		t.Errorf("locality too weak: near avg %v vs far avg %v", sumNear/trials, sumFar/trials)
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func absU64(a, b uint64) float64 {
	if a > b {
		return float64(a - b)
	}
	return float64(b - a)
}
