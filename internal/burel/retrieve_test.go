package burel

import (
	"math/rand"
	"sort"
	"testing"
)

func bucketOf(keys ...uint64) *tupleBucket {
	rows := make([]int, len(keys))
	for i := range rows {
		rows[i] = i
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	for i := range sorted {
		if sorted[i] != keys[i] {
			panic("bucketOf requires sorted keys")
		}
	}
	return newTupleBucket(rows, keys)
}

func TestTakeNearestBasic(t *testing.T) {
	b := bucketOf(10, 20, 30, 40, 50)
	got := b.takeNearest(31, 2)
	// Nearest to 31 are 30 (row 2) then 40 (d=9) vs 20 (d=11) → 40 (row 3).
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("takeNearest = %v, want [2 3]", got)
	}
	if b.remaining != 3 {
		t.Fatalf("remaining = %d", b.remaining)
	}
	// Consumed entries are skipped on the next call.
	got = b.takeNearest(31, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("second takeNearest = %v, want [1 4]", got)
	}
}

func TestTakeNearestEdges(t *testing.T) {
	b := bucketOf(10, 20, 30)
	// Seed below all keys.
	if got := b.takeNearest(0, 1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("low seed = %v", got)
	}
	// Seed above all keys.
	if got := b.takeNearest(100, 1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("high seed = %v", got)
	}
	// Overshoot clamps to remaining.
	if got := b.takeNearest(15, 5); len(got) != 1 || got[0] != 1 {
		t.Fatalf("overshoot = %v", got)
	}
	if got := b.takeNearest(15, 1); got != nil {
		t.Fatalf("empty bucket returned %v", got)
	}
}

func TestTakeNearestExactTies(t *testing.T) {
	b := bucketOf(10, 20, 20, 30)
	got := b.takeNearest(20, 3)
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	// The two exact matches (rows 1, 2) must be among the three.
	has := map[int]bool{}
	for _, r := range got {
		has[r] = true
	}
	if !has[1] || !has[2] {
		t.Fatalf("exact-key rows missing from %v", got)
	}
}

// TestTakeNearestIsActuallyNearest cross-checks against a brute-force
// selection on random inputs: the set of chosen keys must be a nearest set
// (same multiset of distances as brute force).
func TestTakeNearestIsActuallyNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(rng.Intn(1000))
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		rows := make([]int, n)
		for i := range rows {
			rows[i] = i
		}
		b := newTupleBucket(append([]int(nil), rows...), append([]uint64(nil), keys...))
		seed := uint64(rng.Intn(1100))
		k := 1 + rng.Intn(n)
		got := b.takeNearest(seed, k)
		if len(got) != k {
			t.Fatalf("trial %d: got %d of %d", trial, len(got), k)
		}
		// Brute force distances.
		dists := make([]uint64, n)
		for i, key := range keys {
			if key > seed {
				dists[i] = key - seed
			} else {
				dists[i] = seed - key
			}
		}
		sorted := append([]uint64(nil), dists...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		var gotDists []uint64
		for _, r := range got {
			gotDists = append(gotDists, dists[r])
		}
		sort.Slice(gotDists, func(a, b int) bool { return gotDists[a] < gotDists[b] })
		for i := 0; i < k; i++ {
			if gotDists[i] != sorted[i] {
				t.Fatalf("trial %d: distance multiset mismatch: got %v want prefix of %v", trial, gotDists, sorted[:k])
			}
		}
	}
}

// TestInterleavedConsumption exercises the alive-list across interleaved
// takes from different seed positions.
func TestInterleavedConsumption(t *testing.T) {
	keys := make([]uint64, 100)
	rows := make([]int, 100)
	for i := range keys {
		keys[i] = uint64(i * 3)
		rows[i] = i
	}
	b := newTupleBucket(rows, keys)
	seen := make(map[int]bool)
	rng := rand.New(rand.NewSource(41))
	taken := 0
	for b.remaining > 0 {
		k := 1 + rng.Intn(7)
		got := b.takeNearest(uint64(rng.Intn(300)), k)
		for _, r := range got {
			if seen[r] {
				t.Fatalf("row %d taken twice", r)
			}
			seen[r] = true
		}
		taken += len(got)
	}
	if taken != 100 {
		t.Fatalf("consumed %d of 100", taken)
	}
}

func TestPickSeedKey(t *testing.T) {
	b := bucketOf(5, 10, 15, 20)
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 50; i++ {
		k := b.pickSeedKey(rng)
		if k != 5 && k != 10 && k != 15 && k != 20 {
			t.Fatalf("seed key %d not in bucket", k)
		}
	}
	// After consuming all but one, the seed must be the survivor.
	b.takeNearest(0, 3)
	if got := b.pickSeedKey(rng); got != 20 {
		t.Fatalf("seed of singleton = %d, want 20", got)
	}
}
