package burel

// ECSizes is one node of the ECTree: the number of tuples a (potential) EC
// draws from each bucket. Leaves of the final tree prescribe the ECs that
// the retrieval phase materializes.
type ECSizes []int

// Total returns |G| = Σ_j x_j.
func (a ECSizes) Total() int {
	n := 0
	for _, x := range a {
		n += x
	}
	return n
}

// eligible implements the eligibility condition of Theorem 1: an EC drawing
// x_j tuples from bucket B_j follows β-likeness if x_j/|G| ≤ f(p_ℓj) for
// every bucket. minFreq[j] is p_ℓj.
func (a ECSizes) eligible(minFreq []float64, f func(float64) float64) bool {
	total := a.Total()
	if total == 0 {
		return false
	}
	inv := 1 / float64(total)
	for j, x := range a {
		if x == 0 {
			continue
		}
		if float64(x)*inv > f(minFreq[j])+combineEps {
			return false
		}
	}
	return true
}

// BiSplit builds the ECTree top-down (§4.4) and returns its leaves. The
// root holds all of each bucket (x_j = |B_j|). A node is split into halves
// with |B¹_j| = ⌊|B_j|/2⌋ and |B²_j| = |B_j| − |B¹_j| (reproducing the
// paper's Example 2: [5,6,8] → [2,3,4] + [3,3,4]); the split is kept only
// when both children are non-empty and satisfy the eligibility condition.
// When no further split is allowed the node becomes a leaf.
//
// The root is guaranteed eligible when the bucket partition satisfies
// Lemma 2, since then x_j/|DB| = Σ_{v∈V_j} p_v ≤ f(p_ℓj).
func BiSplit(bucketSizes []int, minFreq []float64, f func(float64) float64) []ECSizes {
	return BiSplitFunc(bucketSizes, func(node ECSizes) bool {
		return node.eligible(minFreq, f)
	})
}

// BiSplitFunc is the generic form of BiSplit with a caller-supplied
// eligibility predicate over candidate EC size vectors; SABRE reuses it
// with an EMD-budget predicate.
func BiSplitFunc(bucketSizes []int, eligible func(ECSizes) bool) []ECSizes {
	root := make(ECSizes, len(bucketSizes))
	copy(root, bucketSizes)
	var leaves []ECSizes
	var split func(node ECSizes)
	split = func(node ECSizes) {
		left := make(ECSizes, len(node))
		right := make(ECSizes, len(node))
		for j, x := range node {
			left[j] = x / 2
			right[j] = x - left[j]
		}
		if left.Total() > 0 && right.Total() > 0 &&
			eligible(left) && eligible(right) {
			split(left)
			split(right)
			return
		}
		leaves = append(leaves, node)
	}
	if root.Total() > 0 {
		split(root)
	}
	return leaves
}
