package burel

import (
	"math/rand"
	"sort"
)

// tupleBucket holds one bucket's tuples sorted by Hilbert index, with an
// intrusive doubly-linked "alive" list so that consuming a tuple and finding
// the nearest unconsumed neighbour of a curve position stay near O(1)
// amortized (path-compressed jump pointers skip consumed runs).
type tupleBucket struct {
	rows []int    // table row indices, ascending by key
	keys []uint64 // Hilbert indices, ascending

	next, prev []int // alive-list links; len(rows) = past-the-end, -1 = before-the-start
	jump       []int // path-compressed pointer to the nearest alive position ≥ i (or len(rows))
	head, tail int   // first and last alive positions; head = len(rows), tail = -1 when empty
	remaining  int
}

func newTupleBucket(rows []int, keys []uint64) *tupleBucket {
	n := len(rows)
	b := &tupleBucket{rows: rows, keys: keys, remaining: n, head: 0, tail: n - 1}
	b.next = make([]int, n)
	b.prev = make([]int, n)
	b.jump = make([]int, n+1)
	for i := 0; i < n; i++ {
		b.next[i] = i + 1
		b.prev[i] = i - 1
		b.jump[i] = i
	}
	b.jump[n] = n
	if n == 0 {
		b.head, b.tail = 0, -1
	}
	return b
}

// aliveAtOrAfter returns the smallest alive position ≥ i, or len(rows).
func (b *tupleBucket) aliveAtOrAfter(i int) int {
	root := i
	for b.jump[root] != root {
		root = b.jump[root]
	}
	for b.jump[i] != root {
		b.jump[i], i = root, b.jump[i]
	}
	return root
}

// consume removes position i from the alive list.
func (b *tupleBucket) consume(i int) {
	nx, pv := b.next[i], b.prev[i]
	if pv >= 0 {
		b.next[pv] = nx
	}
	if nx < len(b.rows) {
		b.prev[nx] = pv
	}
	if i == b.head {
		b.head = nx
	}
	if i == b.tail {
		b.tail = pv
	}
	b.jump[i] = nx
	b.remaining--
}

// takeNearest removes and returns the table rows of the count alive tuples
// whose Hilbert keys are nearest to seedKey: binary search locates the
// insertion point, then a two-pointer expansion picks the closer side at
// each step (the paper's "binary search, then expand" heuristic of §4.5).
func (b *tupleBucket) takeNearest(seedKey uint64, count int) []int {
	if count > b.remaining {
		count = b.remaining
	}
	if count == 0 {
		return nil
	}
	out := make([]int, 0, count)
	pos := sort.Search(len(b.keys), func(i int) bool { return b.keys[i] >= seedKey })
	right := b.aliveAtOrAfter(pos)
	var left int
	if right < len(b.rows) {
		left = b.prev[right]
	} else {
		left = b.tail
	}
	for len(out) < count {
		takeLeft := false
		switch {
		case left < 0 && right >= len(b.rows):
			return out // exhausted; unreachable since count ≤ remaining
		case left < 0:
			takeLeft = false
		case right >= len(b.rows):
			takeLeft = true
		default:
			takeLeft = seedKey-b.keys[left] <= b.keys[right]-seedKey
		}
		if takeLeft {
			out = append(out, b.rows[left])
			nl := b.prev[left]
			b.consume(left)
			left = nl
		} else {
			out = append(out, b.rows[right])
			nr := b.next[right]
			b.consume(right)
			right = nr
		}
	}
	return out
}

// headKey returns the Hilbert key of the first (lowest-key) alive tuple.
func (b *tupleBucket) headKey() uint64 {
	return b.keys[b.head]
}

// pickSeedKey returns the Hilbert key of a randomly chosen alive tuple: a
// uniform position in the original order, snapped to the nearest alive
// entry. Near-uniform over the remaining tuples and O(α) thanks to the
// path-compressed jump pointers.
func (b *tupleBucket) pickSeedKey(rng *rand.Rand) uint64 {
	i := b.aliveAtOrAfter(rng.Intn(len(b.rows)))
	if i >= len(b.rows) {
		i = b.tail
	}
	return b.keys[i]
}
