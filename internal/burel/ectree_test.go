package burel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestECSizesTotal(t *testing.T) {
	if got := (ECSizes{1, 2, 3}).Total(); got != 6 {
		t.Fatalf("Total = %d", got)
	}
	if got := (ECSizes{}).Total(); got != 0 {
		t.Fatalf("empty Total = %d", got)
	}
}

// TestBiSplitFuncNeverLosesTuples: for an arbitrary eligibility predicate,
// the leaves conserve per-bucket sums — even adversarial predicates cannot
// lose or duplicate tuples.
func TestBiSplitFuncConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	f := func(seed int64, mode uint8) bool {
		r := rand.New(rand.NewSource(seed))
		nb := 1 + r.Intn(5)
		sizes := make([]int, nb)
		for j := range sizes {
			sizes[j] = r.Intn(300)
		}
		var eligible func(ECSizes) bool
		switch mode % 3 {
		case 0: // always eligible: splits to singletons
			eligible = func(ECSizes) bool { return true }
		case 1: // never eligible: root leaf only
			eligible = func(ECSizes) bool { return false }
		default: // random but deterministic per node total
			eligible = func(n ECSizes) bool { return n.Total()%3 != 0 }
		}
		leaves := BiSplitFunc(sizes, eligible)
		got := make([]int, nb)
		for _, leaf := range leaves {
			for j, x := range leaf {
				got[j] += x
			}
		}
		for j := range sizes {
			if got[j] != sizes[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestBiSplitAlwaysEligibleSplitsFully: with a trivially true predicate the
// tree splits down to single-tuple leaves.
func TestBiSplitAlwaysEligible(t *testing.T) {
	leaves := BiSplitFunc([]int{8}, func(ECSizes) bool { return true })
	if len(leaves) != 8 {
		t.Fatalf("leaves = %d, want 8", len(leaves))
	}
	for _, l := range leaves {
		if l.Total() != 1 {
			t.Fatalf("leaf total %d", l.Total())
		}
	}
}

// TestBiSplitNeverEligible: the root is returned as the only leaf.
func TestBiSplitNeverEligible(t *testing.T) {
	leaves := BiSplitFunc([]int{5, 7}, func(ECSizes) bool { return false })
	if len(leaves) != 1 || leaves[0].Total() != 12 {
		t.Fatalf("leaves = %v", leaves)
	}
}

// TestBiSplitHalfDownRounding: the paper's Example 2 rounding convention —
// the left child takes ⌊x/2⌋ per bucket.
func TestBiSplitHalfDownRounding(t *testing.T) {
	var first ECSizes
	calls := 0
	BiSplitFunc([]int{5, 6, 8}, func(n ECSizes) bool {
		calls++
		if calls == 1 { // first candidate seen is the left child of root
			first = append(ECSizes(nil), n...)
		}
		return false
	})
	want := ECSizes{2, 3, 4}
	for j := range want {
		if first[j] != want[j] {
			t.Fatalf("left child = %v, want %v", first, want)
		}
	}
}

func TestBiSplitZeroRoot(t *testing.T) {
	if leaves := BiSplitFunc([]int{0, 0}, func(ECSizes) bool { return true }); len(leaves) != 0 {
		t.Fatalf("zero root produced %d leaves", len(leaves))
	}
}
