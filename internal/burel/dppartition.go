// Package burel implements BUREL, the paper's generalization-based
// anonymization algorithm for β-likeness (§4): a BUcketization phase that
// partitions SA values into buckets by dynamic programming (Function
// DPpartition, Eq. 6), a REallocation phase that sizes equivalence classes
// with a binary EC tree (biSplit, §4.4), and a retrieval phase that fills
// the classes with Hilbert-curve-adjacent tuples (§4.5).
package burel

import (
	"fmt"
	"sort"
)

// SegmentPartition is the output of DPpartition: a partition of the SA
// values (ordered by ascending overall frequency) into contiguous segments,
// each of which becomes one bucket of tuples.
type SegmentPartition struct {
	// Order lists SA value indices sorted by ascending frequency;
	// only values with positive frequency appear.
	Order []int
	// Freqs are the frequencies of Order's values, ascending.
	Freqs []float64
	// Bounds are segment boundaries: segment s covers Order[Bounds[s]:Bounds[s+1]].
	Bounds []int
}

// NumBuckets returns the number of segments.
func (sp *SegmentPartition) NumBuckets() int { return len(sp.Bounds) - 1 }

// Segment returns the SA value indices of bucket s.
func (sp *SegmentPartition) Segment(s int) []int {
	return sp.Order[sp.Bounds[s]:sp.Bounds[s+1]]
}

// MinFreq returns p_ℓ for bucket s: the smallest overall frequency among
// its SA values. Because values are sorted ascending, it is the first one.
func (sp *SegmentPartition) MinFreq(s int) float64 {
	return sp.Freqs[sp.Bounds[s]]
}

// SumFreq returns Σ_{v_i ∈ V_s} p_i for bucket s.
func (sp *SegmentPartition) SumFreq(s int) float64 {
	sum := 0.0
	for _, f := range sp.Freqs[sp.Bounds[s]:sp.Bounds[s+1]] {
		sum += f
	}
	return sum
}

// DPPartition partitions the SA values with positive frequency into the
// minimum number of buckets such that each bucket satisfies the condition
// of Lemma 2: Σ_{v_i∈V_j} p_i ≤ f(p_ℓj), where p_ℓj is the bucket's
// minimum frequency and f is the model's EC-frequency threshold (Eq. 1).
// ECs drawn proportionally from such buckets satisfy β-likeness.
//
// Values are first sorted by ascending frequency (the paper's convention);
// only contiguous runs of that order may share a bucket. The DP recursion
// (Eq. 6) is N[e] = min over combinable (b,e) of N[b−1] + 1 and runs in
// O(m²) with O(1) combinability checks via a running sum.
func DPPartition(p []float64, f func(float64) float64) (*SegmentPartition, error) {
	sp := &SegmentPartition{}
	for i, pi := range p {
		if pi < 0 {
			return nil, fmt.Errorf("burel: negative frequency p[%d]=%v", i, pi)
		}
		if pi > 0 {
			sp.Order = append(sp.Order, i)
		}
	}
	if len(sp.Order) == 0 {
		return nil, fmt.Errorf("burel: no SA value has positive frequency")
	}
	sort.Slice(sp.Order, func(a, b int) bool {
		if p[sp.Order[a]] != p[sp.Order[b]] {
			return p[sp.Order[a]] < p[sp.Order[b]]
		}
		return sp.Order[a] < sp.Order[b] // stable tie-break
	})
	m := len(sp.Order)
	sp.Freqs = make([]float64, m)
	for i, v := range sp.Order {
		sp.Freqs[i] = p[v]
	}

	// N[e] = min buckets for the first e values; S[e] = start (1-based) of
	// the last bucket in an optimal partition of the first e values.
	const inf = int(^uint(0) >> 1)
	N := make([]int, m+1)
	S := make([]int, m+1)
	N[0] = 0
	for e := 1; e <= m; e++ {
		// A single value is always a valid bucket: p ≤ f(p) since
		// f(p) = p(1+min{β,−ln p}) ≥ p.
		N[e] = N[e-1] + 1
		S[e] = e
		sum := sp.Freqs[e-1]
		for b := e - 1; b >= 1; b-- {
			sum += sp.Freqs[b-1]
			// combinable(b, e): values v_b..v_e fit one bucket.
			if sum > f(sp.Freqs[b-1])+combineEps {
				// Frequencies ascend, so widening the window
				// only grows the sum and shrinks f(p_ℓ):
				// no earlier b can be combinable either.
				break
			}
			if N[b-1] != inf && N[b-1]+1 < N[e] {
				N[e] = N[b-1] + 1
				S[e] = b
			}
		}
	}

	// Walk back from m to materialize segment bounds.
	var rev []int
	for e := m; e > 0; e = S[e] - 1 {
		rev = append(rev, S[e]-1)
	}
	sp.Bounds = make([]int, 0, len(rev)+1)
	for i := len(rev) - 1; i >= 0; i-- {
		sp.Bounds = append(sp.Bounds, rev[i])
	}
	sp.Bounds = append(sp.Bounds, m)
	return sp, nil
}

// combineEps absorbs floating-point noise in the Lemma 2 inequality; the
// frequencies involved are ratios of small integers.
const combineEps = 1e-12

// Validate checks that every segment satisfies Lemma 2 for the given f.
func (sp *SegmentPartition) Validate(f func(float64) float64) error {
	for s := 0; s < sp.NumBuckets(); s++ {
		if sp.Bounds[s] >= sp.Bounds[s+1] {
			return fmt.Errorf("burel: empty segment %d", s)
		}
		if sum, lim := sp.SumFreq(s), f(sp.MinFreq(s)); sum > lim+combineEps {
			return fmt.Errorf("burel: segment %d violates Lemma 2: Σp=%v > f(p_ℓ)=%v", s, sum, lim)
		}
	}
	return nil
}
