package burel

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/hilbert"
	"repro/internal/likeness"
	"repro/internal/microdata"
)

// Options configures a BUREL run.
type Options struct {
	// Beta is the β-likeness threshold (> 0).
	Beta float64
	// Variant selects enhanced (default) or basic β-likeness.
	Variant likeness.Variant
	// Seed drives the EC-seeding randomness; runs are deterministic for
	// a fixed seed.
	Seed int64
	// HilbertBits is the per-dimension resolution of the space-filling
	// curve (default 10; capped so dims·bits ≤ 63).
	HilbertBits int
	// Headroom shrinks the Lemma 2 budget during bucketization to
	// f(p_ℓ)·(1−Headroom), reserving slack for the reallocation phase:
	// biSplit's integer halving drifts each bucket's EC share by up to
	// ~1/|G| from exact proportionality, so buckets packed right up to
	// the Theorem 1 boundary would make even the root split ineligible.
	// Defaults to 0.05; 0 means default, negative disables.
	Headroom float64
	// BoundNegative additionally bounds negative information gain
	// symmetrically (q_v ≥ p_v / (1 + min{β, −ln p_v})), the §3/§7
	// extension that further hardens against deFinetti-style attacks.
	// Segments must then contain every SA value, so expect much larger
	// equivalence classes.
	BoundNegative bool
}

// defaultHeadroom is the bucketization slack fraction; see Options.Headroom.
const defaultHeadroom = 0.05

// Result carries the anonymization output along with the model and the
// bucketization, which the experiments inspect.
type Result struct {
	Partition *microdata.Partition
	Model     *likeness.Model
	Segments  *SegmentPartition
	NumECs    int
}

// Anonymize runs BUREL end-to-end on the table and returns a partition into
// equivalence classes, each of which satisfies β-likeness by Theorem 1.
func Anonymize(t *microdata.Table, opts Options) (*Result, error) {
	return AnonymizeContext(context.Background(), t, opts)
}

// AnonymizeContext is Anonymize with cooperative cancellation: ctx is
// checked between phases and once per materialized EC during the
// reallocation phase, so a canceled build (store shutdown, abandoned
// request) stops burning CPU instead of running to completion.
func AnonymizeContext(ctx context.Context, t *microdata.Table, opts Options) (*Result, error) {
	model, err := likeness.NewModel(opts.Beta, t)
	if err != nil {
		return nil, err
	}
	model.Variant = opts.Variant
	model.BoundNegative = opts.BoundNegative
	if t.Len() == 0 {
		return nil, fmt.Errorf("burel: empty table")
	}

	// Phase 1: bucketize SA values (DPpartition), reserving headroom so
	// the reallocation phase can split ECs despite integer rounding.
	headroom := opts.Headroom
	if headroom == 0 {
		headroom = defaultHeadroom
	}
	if headroom < 0 {
		headroom = 0
	}
	fDP := func(p float64) float64 { return model.MaxFreq(p) * (1 - headroom) }
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp, err := DPPartition(model.P, fDP)
	if err != nil {
		return nil, err
	}

	// Materialize the tuple buckets: all tuples whose SA value falls in
	// segment s form bucket s.
	numBuckets := sp.NumBuckets()
	valueToBucket := make([]int, len(model.P))
	for i := range valueToBucket {
		valueToBucket[i] = -1
	}
	for s := 0; s < numBuckets; s++ {
		for _, v := range sp.Segment(s) {
			valueToBucket[v] = s
		}
	}
	bucketRows := make([][]int, numBuckets)
	for r, tp := range t.Tuples {
		s := valueToBucket[tp.SA]
		if s < 0 {
			return nil, fmt.Errorf("burel: tuple %d carries SA value %d with zero overall frequency", r, tp.SA)
		}
		bucketRows[s] = append(bucketRows[s], r)
	}
	sizes := make([]int, numBuckets)
	minFreq := make([]float64, numBuckets)
	for s := 0; s < numBuckets; s++ {
		sizes[s] = len(bucketRows[s])
		minFreq[s] = sp.MinFreq(s)
	}

	// Phase 2: determine EC sizes (biSplit over the ECTree).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	leaves := BiSplit(sizes, minFreq, model.MaxFreq)

	// Phase 3: materialize ECs as curve slabs repaired to eligibility.
	ecs, err := MaterializeSlabsModelContext(ctx, t, leaves, model, opts.HilbertBits)
	if err != nil {
		return nil, err
	}
	// Hard guarantee: merge any still-violating EC into its neighbour
	// (Lemma 1 monotonicity makes this converge); in practice the slab
	// repair already complies and this is a no-op.
	ecs = RepairMerge(ecs, func(ec *microdata.EC) bool {
		return model.CheckCounts(ec.SACounts(t), ec.Len())
	})
	part := &microdata.Partition{Table: t, ECs: ecs}
	return &Result{Partition: part, Model: model, Segments: sp, NumECs: len(part.ECs)}, nil
}

// RepairMerge enforces a predicate over the partition's ECs by repeatedly
// merging each violating EC with its successor (wrapping to the
// predecessor at the end). By the monotonicity property (Lemma 1) the
// union's distribution distance never exceeds the worse of its parts, so
// the loop converges — in the worst case to the single root EC, which
// always satisfies any distribution constraint relative to itself.
func RepairMerge(ecs []microdata.EC, ok func(ec *microdata.EC) bool) []microdata.EC {
	changed := true
	for changed && len(ecs) > 1 {
		changed = false
		var next []microdata.EC
		for i := 0; i < len(ecs); i++ {
			if ok(&ecs[i]) || i+1 >= len(ecs) {
				next = append(next, ecs[i])
				continue
			}
			merged := microdata.EC{Rows: append(append([]int(nil), ecs[i].Rows...), ecs[i+1].Rows...)}
			next = append(next, merged)
			i++ // consumed the successor
			changed = true
		}
		// A trailing violator merges backward into its predecessor.
		if n := len(next); n > 1 && !ok(&next[n-1]) {
			next[n-2].Rows = append(next[n-2].Rows, next[n-1].Rows...)
			next = next[:n-1]
			changed = true
		}
		ecs = next
	}
	return ecs
}

// Retriever materializes equivalence classes from tuple buckets using the
// Hilbert-order nearest-neighbour heuristic of §4.5. It is shared with the
// SABRE re-implementation, which uses the same redistribution machinery.
type Retriever struct {
	buckets []*tupleBucket
}

// NewRetriever Hilbert-sorts each bucket of table rows.
func NewRetriever(t *microdata.Table, bucketRows [][]int, bits int) (*Retriever, error) {
	mapper, err := qiMapper(t, bits)
	if err != nil {
		return nil, err
	}
	r := &Retriever{buckets: make([]*tupleBucket, len(bucketRows))}
	for s, rows := range bucketRows {
		r.buckets[s] = sortBucket(t, rows, mapper)
	}
	return r, nil
}

// SeedStrategy selects how Materialize picks each EC's seed tuple.
type SeedStrategy int

const (
	// AlignedSweep consumes every bucket strictly from its own lowest
	// unconsumed Hilbert position: EC k is the union of each bucket's
	// k-th curve slab. Buckets never fragment, so late ECs are as
	// compact as early ones; this gives the best information quality
	// and is the default.
	AlignedSweep SeedStrategy = iota
	// SweepSeed seeds each EC at the lowest unconsumed Hilbert position
	// of its largest contributing bucket and takes every bucket's
	// nearest neighbours of that seed. Buckets drift apart over the
	// run; kept for the ablation benchmarks.
	SweepSeed
	// RandomSeed picks a random remaining tuple of the largest
	// contributing bucket, the literal reading of §4.5; kept for the
	// ablation benchmarks.
	RandomSeed
)

// Materialize builds one EC per leaf size vector using the default
// AlignedSweep strategy.
func (r *Retriever) Materialize(leaves []ECSizes, rng *rand.Rand) []microdata.EC {
	return r.MaterializeSeeded(leaves, rng, AlignedSweep)
}

// MaterializeSeeded is Materialize with an explicit seed strategy.
func (r *Retriever) MaterializeSeeded(leaves []ECSizes, rng *rand.Rand, strategy SeedStrategy) []microdata.EC {
	ecs := make([]microdata.EC, 0, len(leaves))
	for _, leaf := range leaves {
		var ec microdata.EC
		switch strategy {
		case AlignedSweep:
			for j, x := range leaf {
				if x == 0 {
					continue
				}
				b := r.buckets[j]
				ec.Rows = append(ec.Rows, b.takeNearest(b.headKey(), x)...)
			}
		default:
			seedBucket := 0
			for j, x := range leaf {
				if x > leaf[seedBucket] {
					seedBucket = j
				}
			}
			if leaf[seedBucket] == 0 {
				continue // all-zero leaf; cannot arise from BiSplit
			}
			var seedKey uint64
			if strategy == RandomSeed {
				seedKey = r.buckets[seedBucket].pickSeedKey(rng)
			} else {
				seedKey = r.buckets[seedBucket].headKey()
			}
			for j, x := range leaf {
				if x == 0 {
					continue
				}
				ec.Rows = append(ec.Rows, r.buckets[j].takeNearest(seedKey, x)...)
			}
		}
		if len(ec.Rows) > 0 {
			ecs = append(ecs, ec)
		}
	}
	return ecs
}

// qiMapper builds the Hilbert mapper over the table's QI domain box.
func qiMapper(t *microdata.Table, bits int) (*hilbert.Mapper, error) {
	d := len(t.Schema.QI)
	if bits <= 0 {
		bits = 10
	}
	if d*bits > 63 {
		bits = 63 / d
	}
	lo := make([]float64, d)
	hi := make([]float64, d)
	for j, a := range t.Schema.QI {
		if a.Kind == microdata.Numeric {
			lo[j], hi[j] = a.Min, a.Max
		} else {
			lo[j], hi[j] = 0, float64(a.Hierarchy.NumLeaves()-1)
		}
	}
	return hilbert.NewMapper(hilbert.MustNew(d, bits), lo, hi)
}

// sortBucket orders a bucket's rows by Hilbert index.
func sortBucket(t *microdata.Table, rows []int, mapper *hilbert.Mapper) *tupleBucket {
	keys := make([]uint64, len(rows))
	for i, r := range rows {
		keys[i] = mapper.Index(t.Tuples[r].QI)
	}
	order := make([]int, len(rows))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if keys[order[a]] != keys[order[b]] {
			return keys[order[a]] < keys[order[b]]
		}
		return rows[order[a]] < rows[order[b]]
	})
	sortedRows := make([]int, len(rows))
	sortedKeys := make([]uint64, len(rows))
	for i, o := range order {
		sortedRows[i] = rows[o]
		sortedKeys[i] = keys[o]
	}
	return newTupleBucket(sortedRows, sortedKeys)
}
