package burel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/census"
	"repro/internal/likeness"
	"repro/internal/microdata"
)

// modelFor builds an enhanced β-likeness threshold function over explicit
// frequencies.
func modelFor(beta float64) func(float64) float64 {
	m := &likeness.Model{Beta: beta, Variant: likeness.Enhanced}
	return m.MaxFreq
}

// TestDPPartitionExample2 reproduces the paper's Example 2: 19 tuples with
// frequencies (2,3,3,3,4,4)/19 and β = 2 bucketize into three buckets
// {headache, epilepsy}, {brain tumors, anemia}, {angina, heart murmur}.
func TestDPPartitionExample2(t *testing.T) {
	p := []float64{2.0 / 19, 3.0 / 19, 3.0 / 19, 3.0 / 19, 4.0 / 19, 4.0 / 19}
	sp, err := DPPartition(p, modelFor(2))
	if err != nil {
		t.Fatalf("DPPartition: %v", err)
	}
	if got := sp.NumBuckets(); got != 3 {
		t.Fatalf("buckets = %d, want 3 (Example 2)", got)
	}
	wantSegs := [][]int{{0, 1}, {2, 3}, {4, 5}}
	for s, want := range wantSegs {
		got := sp.Segment(s)
		if len(got) != len(want) {
			t.Fatalf("segment %d = %v, want %v", s, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("segment %d = %v, want %v", s, got, want)
			}
		}
	}
	if err := sp.Validate(modelFor(2)); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestBiSplitExample2 reproduces the ECTree of Fig. 3: root [5,6,8] splits
// into [2,3,4]+[3,3,4]; [2,3,4] splits into [1,1,2]+[1,2,2]; [3,3,4] cannot
// split (child [2,2,2] would violate eligibility).
func TestBiSplitExample2(t *testing.T) {
	p := []float64{2.0 / 19, 3.0 / 19, 3.0 / 19, 3.0 / 19, 4.0 / 19, 4.0 / 19}
	f := modelFor(2)
	minFreq := []float64{p[0], p[2], p[4]}
	leaves := BiSplit([]int{5, 6, 8}, minFreq, f)
	want := [][]int{{1, 1, 2}, {1, 2, 2}, {3, 3, 4}}
	if len(leaves) != len(want) {
		t.Fatalf("leaves = %v, want %v", leaves, want)
	}
	for i := range want {
		for j := range want[i] {
			if leaves[i][j] != want[i][j] {
				t.Fatalf("leaves = %v, want %v", leaves, want)
			}
		}
	}
}

// TestDPPartitionSingletonAlwaysValid: any frequency vector admits the
// trivial one-value-per-bucket partition, so DPPartition never fails on
// valid input and every returned segment satisfies Lemma 2.
func TestDPPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(30)
		counts := make([]float64, m)
		total := 0.0
		for i := range counts {
			counts[i] = float64(1 + r.Intn(50))
			total += counts[i]
		}
		for i := range counts {
			counts[i] /= total
		}
		beta := 0.2 + r.Float64()*5
		fm := modelFor(beta)
		sp, err := DPPartition(counts, fm)
		if err != nil {
			return false
		}
		if sp.Validate(fm) != nil {
			return false
		}
		// Coverage: every value appears exactly once.
		seen := make([]bool, m)
		for s := 0; s < sp.NumBuckets(); s++ {
			for _, v := range sp.Segment(s) {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		for _, ok := range seen {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestDPPartitionMinimality checks DP optimality against brute force on
// small domains: no contiguous partition of the sorted frequencies uses
// fewer buckets.
func TestDPPartitionMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.Intn(8)
		counts := make([]float64, m)
		total := 0.0
		for i := range counts {
			counts[i] = float64(1 + rng.Intn(20))
			total += counts[i]
		}
		for i := range counts {
			counts[i] /= total
		}
		beta := 0.2 + rng.Float64()*4
		f := modelFor(beta)
		sp, err := DPPartition(counts, f)
		if err != nil {
			t.Fatalf("DPPartition: %v", err)
		}
		if got, want := sp.NumBuckets(), bruteMinBuckets(sp.Freqs, f); got != want {
			t.Fatalf("buckets = %d, brute force = %d (freqs %v, β=%v)", got, want, sp.Freqs, beta)
		}
	}
}

// bruteMinBuckets enumerates all contiguous partitions of the ascending
// frequency vector and returns the minimum count of Lemma-2-valid buckets.
func bruteMinBuckets(freqs []float64, f func(float64) float64) int {
	m := len(freqs)
	const inf = int(^uint(0) >> 1)
	best := make([]int, m+1)
	for e := 1; e <= m; e++ {
		best[e] = inf
		sum := 0.0
		for b := e; b >= 1; b-- {
			sum += freqs[b-1]
			if sum <= f(freqs[b-1])+1e-12 && best[b-1] != inf && best[b-1]+1 < best[e] {
				best[e] = best[b-1] + 1
			}
		}
	}
	return best[m]
}

func TestDPPartitionErrors(t *testing.T) {
	if _, err := DPPartition([]float64{0, 0}, modelFor(1)); err == nil {
		t.Error("all-zero frequencies accepted")
	}
	if _, err := DPPartition([]float64{-0.1, 1.1}, modelFor(1)); err == nil {
		t.Error("negative frequency accepted")
	}
	// Zero-frequency values are skipped, not bucketized.
	sp, err := DPPartition([]float64{0, 0.5, 0.5}, modelFor(1))
	if err != nil {
		t.Fatalf("DPPartition: %v", err)
	}
	for s := 0; s < sp.NumBuckets(); s++ {
		for _, v := range sp.Segment(s) {
			if v == 0 {
				t.Error("zero-frequency value placed in a bucket")
			}
		}
	}
}

// TestBiSplitConservation: leaf size vectors sum to the bucket sizes, and
// every leaf satisfies the eligibility condition whenever the root does.
func TestBiSplitProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nb := 1 + r.Intn(6)
		sizes := make([]int, nb)
		minFreq := make([]float64, nb)
		n := 0
		for j := range sizes {
			sizes[j] = r.Intn(200)
			n += sizes[j]
		}
		if n == 0 {
			return true
		}
		for j := range minFreq {
			// Min frequency consistent with bucket mass.
			minFreq[j] = (0.1 + 0.9*r.Float64()) * float64(sizes[j]) / float64(n)
		}
		beta := 0.5 + 4*r.Float64()
		fm := modelFor(beta)
		// Only meaningful when the root is eligible.
		root := make(ECSizes, nb)
		copy(root, sizes)
		if !root.eligible(minFreq, fm) {
			return true
		}
		leaves := BiSplit(sizes, minFreq, fm)
		got := make([]int, nb)
		for _, leaf := range leaves {
			if !leaf.eligible(minFreq, fm) {
				return false
			}
			for j, x := range leaf {
				got[j] += x
			}
		}
		for j := range sizes {
			if got[j] != sizes[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestAnonymizeCensus runs BUREL end-to-end on a synthetic CENSUS sample
// and verifies every paper-mandated invariant: valid partition, every EC
// satisfies enhanced β-likeness, and the achieved β is within the budget.
func TestAnonymizeCensus(t *testing.T) {
	tab := census.Generate(census.Options{N: 20000, Seed: 42}).Project(3)
	for _, beta := range []float64{1, 2, 4} {
		res, err := Anonymize(tab, Options{Beta: beta, Seed: 1})
		if err != nil {
			t.Fatalf("β=%v: %v", beta, err)
		}
		p := res.Partition
		if err := p.Validate(); err != nil {
			t.Fatalf("β=%v: invalid partition: %v", beta, err)
		}
		if ok, bad := res.Model.CheckPartition(p); !ok {
			q := p.ECs[bad].SADistribution(tab)
			t.Fatalf("β=%v: EC %d violates β-likeness (q=%v)", beta, bad, q)
		}
		if got := likeness.AchievedEnhancedBeta(p); got > beta+1e-9 {
			t.Errorf("β=%v: achieved enhanced β = %v exceeds budget", beta, got)
		}
		if len(p.ECs) < 2 {
			t.Errorf("β=%v: only %d EC(s); expected a real partition", beta, len(p.ECs))
		}
		ail := p.AIL()
		if ail <= 0 || ail >= 1 {
			t.Errorf("β=%v: AIL = %v outside (0,1)", beta, ail)
		}
	}
}

// TestAILDecreasesWithBeta: relaxing β must not worsen information quality
// (Fig. 5a trend).
func TestAILDecreasesWithBeta(t *testing.T) {
	tab := census.Generate(census.Options{N: 20000, Seed: 7}).Project(3)
	prev := math.Inf(1)
	for _, beta := range []float64{1, 2, 3, 4, 5} {
		res, err := Anonymize(tab, Options{Beta: beta, Seed: 1})
		if err != nil {
			t.Fatalf("β=%v: %v", beta, err)
		}
		ail := res.Partition.AIL()
		if ail > prev*1.10 { // allow 10% noise from EC seeding
			t.Errorf("AIL rose substantially from %v to %v at β=%v", prev, ail, beta)
		}
		prev = ail
	}
}

// TestAnonymizeDeterminism: identical seeds give identical partitions.
func TestAnonymizeDeterminism(t *testing.T) {
	tab := census.Generate(census.Options{N: 5000, Seed: 3}).Project(3)
	a, err := Anonymize(tab, Options{Beta: 2, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anonymize(tab, Options{Beta: 2, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Partition.ECs) != len(b.Partition.ECs) {
		t.Fatalf("EC counts differ: %d vs %d", len(a.Partition.ECs), len(b.Partition.ECs))
	}
	for i := range a.Partition.ECs {
		ra, rb := a.Partition.ECs[i].Rows, b.Partition.ECs[i].Rows
		if len(ra) != len(rb) {
			t.Fatalf("EC %d sizes differ", i)
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("EC %d differs at %d", i, j)
			}
		}
	}
}

// TestAnonymizeSmallTable: the paper's Example 1/Table 1 scenario — six
// patients, six distinct diseases — must at least satisfy the requested β.
func TestAnonymizeSmallTable(t *testing.T) {
	s := &microdata.Schema{
		QI: []microdata.Attribute{
			microdata.NumericAttr("Weight", 50, 80),
			microdata.NumericAttr("Age", 40, 70),
		},
		SA: microdata.SensitiveAttr{Name: "Disease", Values: []string{
			"headache", "epilepsy", "brain tumors", "heart murmur", "anemia", "angina",
		}},
	}
	tb := microdata.NewTable(s)
	pts := [][3]float64{{70, 40, 0}, {60, 60, 1}, {50, 50, 2}, {70, 50, 3}, {80, 50, 4}, {60, 70, 5}}
	for _, p := range pts {
		tb.MustAppend(microdata.Tuple{QI: []float64{p[0], p[1]}, SA: int(p[2])})
	}
	res, err := Anonymize(tb, Options{Beta: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(); err != nil {
		t.Fatal(err)
	}
	if ok, bad := res.Model.CheckPartition(res.Partition); !ok {
		t.Fatalf("EC %d violates likeness", bad)
	}
	// With 6 equally rare values and β=2, buckets of up to 3 values are
	// combinable (3/6 ≤ f(1/6) = 0.5); two ECs should emerge.
	if len(res.Partition.ECs) < 2 {
		t.Errorf("expected ≥2 ECs, got %d", len(res.Partition.ECs))
	}
}

func TestAnonymizeErrors(t *testing.T) {
	tab := census.Generate(census.Options{N: 100, Seed: 1}).Project(2)
	if _, err := Anonymize(tab, Options{Beta: 0}); err == nil {
		t.Error("β=0 accepted")
	}
	empty := microdata.NewTable(tab.Schema)
	if _, err := Anonymize(empty, Options{Beta: 1}); err == nil {
		t.Error("empty table accepted")
	}
}

// TestBasicVariant: the basic model admits looser partitions (never fewer
// ECs than enhanced at the same β) and still bounds positive gain by β for
// infrequent values.
func TestBasicVariant(t *testing.T) {
	tab := census.Generate(census.Options{N: 10000, Seed: 11}).Project(3)
	res, err := Anonymize(tab, Options{Beta: 2, Variant: likeness.Basic, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ok, bad := res.Model.CheckPartition(res.Partition); !ok {
		t.Fatalf("EC %d violates basic likeness", bad)
	}
	if got := likeness.AchievedBeta(res.Partition); got > 2+1e-9 {
		t.Errorf("achieved β = %v > 2 under basic model", got)
	}
}

// TestRetrieverConsumesAll: every bucket row lands in exactly one EC.
func TestRetrieverConsumesAll(t *testing.T) {
	tab := census.Generate(census.Options{N: 3000, Seed: 13}).Project(2)
	res, err := Anonymize(tab, Options{Beta: 3, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := range res.Partition.ECs {
		total += res.Partition.ECs[i].Len()
	}
	if total != tab.Len() {
		t.Fatalf("ECs cover %d of %d rows", total, tab.Len())
	}
}
