package burel

import (
	"math/rand"
	"testing"

	"repro/internal/census"
	"repro/internal/likeness"
	"repro/internal/microdata"
)

// TestMaterializeSlabsCoverage: slabs cover every row exactly once and every
// emitted EC satisfies the per-value cap (up to the final remainder, which
// Anonymize repairs — here we call the low-level function directly and
// tolerate only the last EC).
func TestMaterializeSlabsCoverage(t *testing.T) {
	tab := census.Generate(census.Options{N: 10000, Seed: 3}).Project(3)
	model, err := likeness.NewModel(3, tab)
	if err != nil {
		t.Fatal(err)
	}
	leaves := []ECSizes{}
	for i := 0; i < 40; i++ {
		leaves = append(leaves, ECSizes{250})
	}
	ecs := MaterializeSlabs(tab, leaves, model.P, model.MaxFreq, 10)
	p := &microdata.Partition{Table: tab, ECs: ecs}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range ecs {
		if i == len(ecs)-1 {
			continue // remainder EC may be non-compliant pre-repair
		}
		if !model.CheckCounts(ecs[i].SACounts(tab), ecs[i].Len()) {
			t.Fatalf("EC %d violates the model", i)
		}
	}
}

// TestMaterializeSlabsSegmentsAreContiguous: each EC is a contiguous run of
// the Hilbert order — its rows' curve keys form an interval disjoint from
// every other EC's.
func TestMaterializeSlabsContiguous(t *testing.T) {
	tab := census.Generate(census.Options{N: 5000, Seed: 5}).Project(2)
	model, err := likeness.NewModel(4, tab)
	if err != nil {
		t.Fatal(err)
	}
	var leaves []ECSizes
	for i := 0; i < 20; i++ {
		leaves = append(leaves, ECSizes{250})
	}
	ecs := MaterializeSlabs(tab, leaves, model.P, model.MaxFreq, 10)
	mapper, err := qiMapper(tab, 10)
	if err != nil {
		t.Fatal(err)
	}
	type span struct{ lo, hi uint64 }
	var spans []span
	for i := range ecs {
		lo, hi := ^uint64(0), uint64(0)
		for _, r := range ecs[i].Rows {
			k := mapper.Index(tab.Tuples[r].QI)
			if k < lo {
				lo = k
			}
			if k > hi {
				hi = k
			}
		}
		spans = append(spans, span{lo, hi})
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].lo < spans[i-1].hi {
			// Equal keys may straddle a cut; only strict inversion
			// (overlap beyond shared keys) is an error.
			if spans[i].lo != spans[i-1].hi {
				t.Fatalf("EC %d span [%d,%d] overlaps EC %d span [%d,%d]",
					i, spans[i].lo, spans[i].hi, i-1, spans[i-1].lo, spans[i-1].hi)
			}
		}
	}
}

func TestMaterializeSlabsEmpty(t *testing.T) {
	tab := census.Generate(census.Options{N: 100, Seed: 1}).Project(2)
	model, _ := likeness.NewModel(2, tab)
	if got := MaterializeSlabs(tab, nil, model.P, model.MaxFreq, 10); got != nil {
		t.Fatalf("nil leaves gave %d ECs", len(got))
	}
	empty := microdata.NewTable(tab.Schema)
	if got := MaterializeSlabs(empty, []ECSizes{{10}}, model.P, model.MaxFreq, 10); got != nil {
		t.Fatalf("empty table gave %d ECs", len(got))
	}
}

func TestRepairMergeConverges(t *testing.T) {
	tab := census.Generate(census.Options{N: 2000, Seed: 9}).Project(2)
	// Build deliberately skewed ECs: group rows by SA parity so most ECs
	// violate the model.
	var a, b []int
	for r, tp := range tab.Tuples {
		if tp.SA%2 == 0 {
			a = append(a, r)
		} else {
			b = append(b, r)
		}
	}
	var ecs []microdata.EC
	for i := 0; i < len(a); i += 100 {
		j := i + 100
		if j > len(a) {
			j = len(a)
		}
		ecs = append(ecs, microdata.EC{Rows: a[i:j]})
	}
	for i := 0; i < len(b); i += 100 {
		j := i + 100
		if j > len(b) {
			j = len(b)
		}
		ecs = append(ecs, microdata.EC{Rows: b[i:j]})
	}
	model, err := likeness.NewModel(1, tab)
	if err != nil {
		t.Fatal(err)
	}
	ok := func(ec *microdata.EC) bool {
		return model.CheckCounts(ec.SACounts(tab), ec.Len())
	}
	repaired := RepairMerge(ecs, ok)
	for i := range repaired {
		if !ok(&repaired[i]) {
			t.Fatalf("EC %d still violates after repair", i)
		}
	}
	p := &microdata.Partition{Table: tab, ECs: repaired}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRepairMergeNoOpWhenCompliant(t *testing.T) {
	ecs := []microdata.EC{{Rows: []int{0}}, {Rows: []int{1}}, {Rows: []int{2}}}
	out := RepairMerge(ecs, func(*microdata.EC) bool { return true })
	if len(out) != 3 {
		t.Fatalf("compliant partition changed: %d ECs", len(out))
	}
}

func TestRepairMergeAlwaysFalseCollapses(t *testing.T) {
	ecs := []microdata.EC{{Rows: []int{0}}, {Rows: []int{1}}, {Rows: []int{2}}, {Rows: []int{3}}}
	out := RepairMerge(ecs, func(*microdata.EC) bool { return false })
	if len(out) != 1 {
		t.Fatalf("expected collapse to 1 EC, got %d", len(out))
	}
	if len(out[0].Rows) != 4 {
		t.Fatalf("rows lost: %d", len(out[0].Rows))
	}
}

// TestSlabsBeatLiteralRetrievalOnAIL documents the headline engineering
// result recorded in DESIGN.md: contiguous curve segments give materially
// better information quality than the literal random-seed retrieval, at
// equal privacy.
func TestSlabsBeatLiteralRetrievalOnAIL(t *testing.T) {
	tab := census.Generate(census.Options{N: 30000, Seed: 11}).Project(3)
	res, err := Anonymize(tab, Options{Beta: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	slabAIL := res.Partition.AIL()

	// Literal §4.5 retrieval over the same bucketization.
	model, _ := likeness.NewModel(4, tab)
	fDP := func(p float64) float64 { return model.MaxFreq(p) * (1 - defaultHeadroom) }
	sp, err := DPPartition(model.P, fDP)
	if err != nil {
		t.Fatal(err)
	}
	v2b := make([]int, len(model.P))
	for s := 0; s < sp.NumBuckets(); s++ {
		for _, v := range sp.Segment(s) {
			v2b[v] = s
		}
	}
	bucketRows := make([][]int, sp.NumBuckets())
	for r, tp := range tab.Tuples {
		bucketRows[v2b[tp.SA]] = append(bucketRows[v2b[tp.SA]], r)
	}
	sizes := make([]int, sp.NumBuckets())
	minF := make([]float64, sp.NumBuckets())
	for s := range sizes {
		sizes[s] = len(bucketRows[s])
		minF[s] = sp.MinFreq(s)
	}
	leaves := BiSplit(sizes, minF, model.MaxFreq)
	ret, err := NewRetriever(tab, bucketRows, 10)
	if err != nil {
		t.Fatal(err)
	}
	ecs := ret.MaterializeSeeded(leaves, rand.New(rand.NewSource(1)), RandomSeed)
	literal := &microdata.Partition{Table: tab, ECs: ecs}
	if err := literal.Validate(); err != nil {
		t.Fatal(err)
	}
	if ok, bad := model.CheckPartition(literal); !ok {
		t.Fatalf("literal retrieval EC %d violates the model", bad)
	}
	if slabAIL >= literal.AIL() {
		t.Errorf("slab AIL %v not below literal retrieval AIL %v", slabAIL, literal.AIL())
	}
}

// TestBoundNegative: with the §7 negative-gain extension enabled, every EC
// satisfies the symmetric floors too (every SA value is present at no less
// than p/(1+min{β,−ln p}) of its overall frequency).
func TestBoundNegative(t *testing.T) {
	tab := census.Generate(census.Options{N: 30000, Seed: 21}).Project(3)
	res, err := Anonymize(tab, Options{Beta: 4, Seed: 1, BoundNegative: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(); err != nil {
		t.Fatal(err)
	}
	if !res.Model.BoundNegative {
		t.Fatal("model not configured with BoundNegative")
	}
	if ok, bad := res.Model.CheckPartition(res.Partition); !ok {
		q := res.Partition.ECs[bad].SADistribution(tab)
		t.Fatalf("EC %d violates the symmetric model (q=%v)", bad, q)
	}
	// Floors force every value into every EC: distinct ℓ = full domain.
	minL, _ := likeness.AchievedL(res.Partition)
	if minL != len(tab.Schema.SA.Values) {
		t.Errorf("minL = %d, want full domain %d", minL, len(tab.Schema.SA.Values))
	}
	// The symmetric variant cannot give more ECs than the plain one.
	plain, err := Anonymize(tab, Options{Beta: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Partition.ECs) > len(plain.Partition.ECs) {
		t.Errorf("symmetric variant produced more ECs (%d) than plain (%d)",
			len(res.Partition.ECs), len(plain.Partition.ECs))
	}
}
