package burel

import (
	"context"
	"sort"

	"repro/internal/likeness"
	"repro/internal/microdata"
)

// MaterializeSlabs is BUREL's default reallocation materializer: it walks
// the table in Hilbert-curve order and cuts it into contiguous segments,
// one per ECTree leaf. Each segment starts at the leaf's prescribed size
// (the biSplit output of §4.4) and is extended tuple by tuple until it
// satisfies β-likeness directly — q_v ≤ f(p_v) for every SA value v
// (Definition 3). The per-value check subsumes Theorem 1's bucket-level
// worst case (which assumes every draw could be the bucket's rarest value
// and would force needless extension on real mixes) while still being
// exact.
//
// Compared with the literal §4.5 heuristic (per-bucket nearest-neighbour
// draws around a random seed, available as Retriever.MaterializeSeeded with
// RandomSeed), contiguous curve segments keep each EC's bounding box
// minimal even when the SA distribution varies across QI space: tuples are
// never teleported between distant regions to meet proportional quotas;
// instead a segment locally grows until its own mix is eligible. The
// trailing remainder joins the last EC; Anonymize's merge repair (Lemma 1)
// covers any residual violation.
func MaterializeSlabs(t *microdata.Table, leaves []ECSizes, saFreq []float64, f func(float64) float64, bits int) []microdata.EC {
	ecs, _ := materializeSlabs(context.Background(), t, leaves, saFreq, f, nil, bits)
	return ecs
}

// MaterializeSlabsModel materializes slabs against a full likeness model,
// honoring its BoundNegative floors in addition to the f(p) caps.
func MaterializeSlabsModel(t *microdata.Table, leaves []ECSizes, model *likeness.Model, bits int) []microdata.EC {
	ecs, _ := MaterializeSlabsModelContext(context.Background(), t, leaves, model, bits)
	return ecs
}

// MaterializeSlabsModelContext is MaterializeSlabsModel with cooperative
// cancellation: ctx is checked once per materialized EC, and a canceled
// run returns the ctx error instead of the slabs.
func MaterializeSlabsModelContext(ctx context.Context, t *microdata.Table, leaves []ECSizes, model *likeness.Model, bits int) ([]microdata.EC, error) {
	var minf func(float64) float64
	if model.BoundNegative {
		minf = model.MinFreq
	}
	return materializeSlabs(ctx, t, leaves, model.P, model.MaxFreq, minf, bits)
}

func materializeSlabs(ctx context.Context, t *microdata.Table, leaves []ECSizes, saFreq []float64, f func(float64) float64, minf func(float64) float64, bits int) ([]microdata.EC, error) {
	n := t.Len()
	if n == 0 || len(leaves) == 0 {
		return nil, nil
	}
	mapper, err := qiMapper(t, bits)
	if err != nil {
		// Cannot happen for a validated schema; degrade to one EC.
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return []microdata.EC{{Rows: all}}, nil
	}
	order := make([]int, n)
	keys := make([]uint64, n)
	for i := range order {
		order[i] = i
		keys[i] = mapper.Index(t.Tuples[i].QI)
	}
	sort.Slice(order, func(a, b int) bool {
		if keys[order[a]] != keys[order[b]] {
			return keys[order[a]] < keys[order[b]]
		}
		return order[a] < order[b]
	})

	// Per-value frequency caps; count_v ≤ cap_v·|G| (+ integer slack).
	caps := make([]float64, len(saFreq))
	for v, p := range saFreq {
		caps[v] = f(p)
	}
	// Optional per-value floors (negative-gain extension).
	var floors []float64
	if minf != nil {
		floors = make([]float64, len(saFreq))
		for v, p := range saFreq {
			floors[v] = minf(p)
		}
	}

	counts := make([]int, len(saFreq))
	var ecs []microdata.EC
	pos := 0
	for li := 0; li < len(leaves) && pos < n; li++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		target := leaves[li].Total()
		if target <= 0 {
			continue
		}
		for v := range counts {
			counts[v] = 0
		}
		start := pos
		// Take the leaf's prescribed size...
		for pos < n && pos-start < target {
			counts[t.Tuples[order[pos]].SA]++
			pos++
		}
		// ...then extend until the segment satisfies the model.
		for pos < n && !(eligibleCounts(counts, pos-start, caps) &&
			aboveFloors(counts, pos-start, floors)) {
			counts[t.Tuples[order[pos]].SA]++
			pos++
		}
		ecs = append(ecs, microdata.EC{Rows: append([]int(nil), order[start:pos]...)})
	}
	if pos < n {
		// Remainder: join the last EC so no tuple is dropped.
		if len(ecs) == 0 {
			ecs = append(ecs, microdata.EC{})
		}
		last := &ecs[len(ecs)-1]
		last.Rows = append(last.Rows, order[pos:]...)
	}
	return ecs, nil
}

// aboveFloors checks count_v ≥ floor_v·g for every SA value (no-op when
// floors is nil).
func aboveFloors(counts []int, g int, floors []float64) bool {
	if floors == nil {
		return true
	}
	if g == 0 {
		return false
	}
	fg := float64(g)
	for v, x := range counts {
		if float64(x) < floors[v]*fg-combineEps {
			return false
		}
	}
	return true
}

// eligibleCounts checks count_v ≤ cap_v·g for every SA value.
func eligibleCounts(counts []int, g int, caps []float64) bool {
	if g == 0 {
		return false
	}
	fg := float64(g)
	for j, x := range counts {
		if x == 0 {
			continue
		}
		if float64(x) > caps[j]*fg+combineEps {
			return false
		}
	}
	return true
}
