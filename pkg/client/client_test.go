package client

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/api"
)

// fakeService scripts one route's responses in order, then repeats the
// last one.
type fakeService struct {
	t        *testing.T
	calls    atomic.Int64
	handler  http.HandlerFunc
	ts       *httptest.Server
	lastBody atomic.Pointer[[]byte]
}

func newFake(t *testing.T, h http.HandlerFunc) (*fakeService, *Client) {
	t.Helper()
	f := &fakeService{t: t, handler: h}
	f.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		data, _ := io.ReadAll(r.Body)
		f.lastBody.Store(&data)
		f.calls.Add(1)
		h(w, r)
	}))
	t.Cleanup(f.ts.Close)
	c := New(f.ts.URL, WithRetryWait(time.Millisecond), WithMaxRetryWait(5*time.Millisecond))
	return f, c
}

func writeEnvelope(w http.ResponseWriter, status int, code, msg string, details map[string]any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(api.Envelope{Error: api.Error{Code: code, Message: msg, Details: details}})
}

func TestErrorEnvelopeDecoding(t *testing.T) {
	_, c := newFake(t, func(w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, http.StatusNotFound, api.CodeNotFound, `release not found: "r-000404"`, map[string]any{"id": "r-000404"})
	})
	_, err := c.GetRelease(context.Background(), "r-000404")
	var ae *Error
	if !errors.As(err, &ae) {
		t.Fatalf("error %T is not *client.Error: %v", err, err)
	}
	if ae.StatusCode != http.StatusNotFound || ae.Code != api.CodeNotFound || ae.Message == "" {
		t.Fatalf("decoded %+v", ae)
	}
	if ae.Details["id"] != "r-000404" {
		t.Fatalf("details %+v", ae.Details)
	}
	if !IsNotFound(err) || IsNotReady(err) || IsInvalid(err) {
		t.Fatal("code helpers misclassified the error")
	}
}

func TestNonEnvelopeErrorBody(t *testing.T) {
	_, c := newFake(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "panic page", http.StatusBadGateway)
	})
	_, err := c.GetRelease(context.Background(), "r-000001")
	var ae *Error
	if !errors.As(err, &ae) {
		t.Fatalf("error %T: %v", err, err)
	}
	if ae.StatusCode != http.StatusBadGateway || ae.Message != "panic page" {
		t.Fatalf("decoded %+v", ae)
	}
}

// TestRetryAfterHonored: 503s with Retry-After are retried until the
// service recovers, within the budget.
func TestRetryAfterHonored(t *testing.T) {
	var n atomic.Int64
	f, c := newFake(t, func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			writeEnvelope(w, http.StatusServiceUnavailable, api.CodeNotReady, "release r-000001 is building", nil)
			return
		}
		w.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(w).Encode(api.QueryResponse{ReleaseID: "r-000001", Estimate: 42})
	})
	res, err := c.Query(context.Background(), "r-000001", api.Query{SALo: 0, SAHi: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 42 {
		t.Fatalf("estimate %v", res.Estimate)
	}
	if got := f.calls.Load(); got != 3 {
		t.Fatalf("%d attempts, want 3 (2 retries)", got)
	}
}

// TestQueryDetailedEnvelope: QueryDetailed surfaces the response
// envelope — release ID echo and the server's request ID (the key into
// GetTrace) — that the back-compat Query projection drops.
func TestQueryDetailedEnvelope(t *testing.T) {
	_, c := newFake(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(w).Encode(api.QueryResponse{ReleaseID: "r-000001", Estimate: 42, RequestID: "ab12cd34"})
	})
	resp, err := c.QueryDetailed(context.Background(), "r-000001", api.Query{SALo: 0, SAHi: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ReleaseID != "r-000001" || resp.Estimate != 42 || resp.RequestID != "ab12cd34" {
		t.Fatalf("envelope %+v", resp)
	}
	res, err := c.Query(context.Background(), "r-000001", api.Query{SALo: 0, SAHi: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 42 {
		t.Fatalf("projected estimate %v", res.Estimate)
	}
}

// TestRetryBounded: a service that never recovers fails after the retry
// budget with the final 503, not an infinite loop.
func TestRetryBounded(t *testing.T) {
	f, c := newFake(t, func(w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, http.StatusServiceUnavailable, api.CodeUnavailable, "queue full", nil)
	})
	_, err := c.Query(context.Background(), "r-000001", api.Query{})
	if !IsUnavailable(err) {
		t.Fatalf("err %v, want unavailable", err)
	}
	if got := f.calls.Load(); got != int64(DefaultMaxRetries)+1 {
		t.Fatalf("%d attempts, want %d", got, DefaultMaxRetries+1)
	}
}

// TestRetryDisabled: WithMaxRetries(0) surfaces the first 503.
func TestRetryDisabled(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		writeEnvelope(w, http.StatusServiceUnavailable, api.CodeUnavailable, "later", nil)
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL, WithMaxRetries(0))
	if _, err := c.Query(context.Background(), "r-1", api.Query{}); !IsUnavailable(err) {
		t.Fatalf("err %v", err)
	}
	if n.Load() != 1 {
		t.Fatalf("%d attempts, want 1", n.Load())
	}
}

// TestRetryRespectsContext: cancellation during the retry sleep aborts
// with the context error.
func TestRetryRespectsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		writeEnvelope(w, http.StatusServiceUnavailable, api.CodeNotReady, "building", nil)
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL, WithMaxRetryWait(time.Hour)) // let Retry-After dominate
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Query(ctx, "r-000001", api.Query{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("retry sleep ignored the context")
	}
}

// TestCreateReleaseMarshalsParams: the params value lands as a raw JSON
// object in the request body.
func TestCreateReleaseMarshalsParams(t *testing.T) {
	f, c := newFake(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(api.Release{ID: "r-000001", Status: api.StatusPending})
	})
	rel, err := c.CreateRelease(context.Background(), CreateSpec{
		Method: "burel",
		Params: map[string]any{"beta": 2.5, "seed": 7},
		QI:     3,
		CSV:    "Age\n1\n",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel.ID != "r-000001" {
		t.Fatalf("release %+v", rel)
	}
	var req api.CreateReleaseRequest
	if err := json.Unmarshal(*f.lastBody.Load(), &req); err != nil {
		t.Fatal(err)
	}
	if req.Method != "burel" || req.QI != 3 || req.CSV == "" {
		t.Fatalf("request %+v", req)
	}
	var params map[string]float64
	if err := json.Unmarshal(req.Params, &params); err != nil {
		t.Fatal(err)
	}
	if params["beta"] != 2.5 || params["seed"] != 7 {
		t.Fatalf("params %v", params)
	}
}

// TestWaitReady: polls through pending → ready, and surfaces failed
// builds as a typed build_failed error.
func TestWaitReady(t *testing.T) {
	var n atomic.Int64
	_, c := newFake(t, func(w http.ResponseWriter, r *http.Request) {
		rel := api.Release{ID: "r-000001", Status: api.StatusBuilding}
		if n.Add(1) >= 3 {
			rel.Status = api.StatusReady
		}
		_ = json.NewEncoder(w).Encode(rel)
	})
	rel, err := c.WaitReady(context.Background(), "r-000001", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Status != api.StatusReady || n.Load() < 3 {
		t.Fatalf("status %s after %d polls", rel.Status, n.Load())
	}

	_, c2 := newFake(t, func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(api.Release{ID: "r-000002", Status: api.StatusFailed, Error: "ℓ too large"})
	})
	rel, err = c2.WaitReady(context.Background(), "r-000002", time.Millisecond)
	if !IsBuildFailed(err) {
		t.Fatalf("err %v, want build_failed", err)
	}
	if rel.Status != api.StatusFailed {
		t.Fatalf("final metadata %+v", rel)
	}
}

// TestBackoffNeverOverflows: with a large retry budget and no
// Retry-After, the doubling backoff must clamp at maxRetryWait instead
// of overflowing into a negative (zero-delay) sleep.
func TestBackoffNeverOverflows(t *testing.T) {
	c := New("http://unused", WithRetryWait(100*time.Millisecond), WithMaxRetryWait(10*time.Millisecond))
	start := time.Now()
	if err := c.sleep(context.Background(), 0, 62); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 8*time.Millisecond || d > 5*time.Second {
		t.Fatalf("attempt-62 backoff slept %v, want ≈ maxRetryWait", d)
	}
	// Zero-configured waits still sleep the cap, never a negative.
	c = New("http://unused", WithRetryWait(0), WithMaxRetryWait(5*time.Millisecond))
	start = time.Now()
	if err := c.sleep(context.Background(), 0, 3); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 3*time.Millisecond {
		t.Fatalf("zero-base backoff slept only %v", d)
	}
}

// TestWaitReadyPacingUnderSlowServer: a GetRelease round-trip longer
// than the poll interval must not collapse WaitReady into back-to-back
// polling (the fired timer's stale tick has to be drained).
func TestWaitReadyPacingUnderSlowServer(t *testing.T) {
	var n atomic.Int64
	_, c := newFake(t, func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(6 * time.Millisecond) // RTT > poll interval
		rel := api.Release{ID: "r-000001", Status: api.StatusBuilding}
		if n.Add(1) >= 4 {
			rel.Status = api.StatusReady
		}
		_ = json.NewEncoder(w).Encode(rel)
	})
	start := time.Now()
	if _, err := c.WaitReady(context.Background(), "r-000001", 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// 4 polls × (6ms RTT + 5ms pacing between polls); without pacing the
	// loop finishes in ~4 RTTs. Allow slack, but require the 3 sleeps.
	if d := time.Since(start); d < 6*time.Millisecond*4+5*time.Millisecond*3-5*time.Millisecond {
		t.Fatalf("4 polls finished in %v: pacing sleeps were skipped", d)
	}
}

func TestHealthz(t *testing.T) {
	_, c := newFake(t, func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	})
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestParseRetryAfterForms pins both RFC 9110 Retry-After forms: plain
// delay-seconds, and an HTTP-date interpreted relative to the response's
// Date header (so the server's clock defines "now", not the client's).
func TestParseRetryAfterForms(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	date := base.Format(http.TimeFormat)
	cases := []struct {
		name  string
		value string
		date  string
		want  time.Duration
	}{
		{"empty", "", date, 0},
		{"delay seconds", "7", date, 7 * time.Second},
		{"delay seconds padded", "  30 ", date, 30 * time.Second},
		{"negative delay clamps", "-5", date, 0},
		{"garbage", "soon", date, 0},
		{"http date ahead", base.Add(90 * time.Second).Format(http.TimeFormat), date, 90 * time.Second},
		{"http date in the past clamps", base.Add(-time.Hour).Format(http.TimeFormat), date, 0},
		{"http date equal to Date clamps", date, date, 0},
		{"rfc850 date form", base.Add(2 * time.Minute).Format("Monday, 02-Jan-06 15:04:05 MST"), date, 2 * time.Minute},
		{"asctime date form", base.Add(time.Minute).Format(time.ANSIC), date, time.Minute},
		{"unparseable date ignored", "Fri, 99 Zed 2026 12:00:00 GMT", date, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := parseRetryAfter(tc.value, tc.date); got != tc.want {
				t.Fatalf("parseRetryAfter(%q, %q) = %v, want %v", tc.value, tc.date, got, tc.want)
			}
		})
	}
}

// TestParseRetryAfterWithoutDate: an HTTP-date with no usable Date header
// falls back to the local clock — a date a minute out must land within
// the clamp-adjusted (0, minute] window rather than at a fixed value.
func TestParseRetryAfterWithoutDate(t *testing.T) {
	at := time.Now().Add(time.Minute).UTC().Format(http.TimeFormat)
	for _, date := range []string{"", "not a date"} {
		got := parseRetryAfter(at, date)
		if got <= 0 || got > time.Minute {
			t.Fatalf("parseRetryAfter(%q, %q) = %v, want within (0, 1m]", at, date, got)
		}
	}
	if got := parseRetryAfter(time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat), ""); got != 0 {
		t.Fatalf("past date against local clock = %v, want 0", got)
	}
}

// TestRetryAfterHTTPDateHonored drives the date form end to end: the
// 503's Retry-After names a moment one millisecond past the response's
// own Date, so the retry happens promptly and succeeds.
func TestRetryAfterHTTPDateHonored(t *testing.T) {
	var n atomic.Int64
	f, c := newFake(t, func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) == 1 {
			now := time.Now().UTC()
			w.Header().Set("Date", now.Format(http.TimeFormat))
			w.Header().Set("Retry-After", now.Add(time.Second).Format(http.TimeFormat))
			writeEnvelope(w, http.StatusServiceUnavailable, api.CodeNotReady, "building", nil)
			return
		}
		w.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(w).Encode(api.QueryResponse{ReleaseID: "r-000001", Estimate: 7})
	})
	res, err := c.Query(context.Background(), "r-000001", api.Query{SALo: 0, SAHi: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 7 || f.calls.Load() != 2 {
		t.Fatalf("estimate %v after %d calls", res.Estimate, f.calls.Load())
	}
}
