// Package client is the typed Go SDK for the anonymization/query service
// (internal/server, run by cmd/serve). It speaks the wire contract of
// repro/pkg/api and adds the client-side discipline callers would
// otherwise hand-roll:
//
//   - typed requests/responses for every route (CreateRelease, GetRelease,
//     ListReleases, WaitReady, Query, QueryBatch, Evaluate, GetEvaluation,
//     WaitEvaluated, Healthz);
//   - the structured error envelope decoded into *client.Error, so
//     callers branch on stable codes (client.IsNotFound, ...) instead of
//     string-matching bodies;
//   - bounded, Retry-After-honoring retry of 503 responses (a pending
//     release, a saturated build queue), with context cancellation
//     respected while waiting.
//
// A release's wire form carries Persisted: against a server running with
// -data-dir, a ready release's snapshot is on disk and survives a server
// restart with identical query answers (the release ID stays valid, so
// clients may cache IDs across restarts of a durable server).
//
// Method params are passed as any JSON-marshalable value; the canonical
// typed params live in repro/anon (e.g. anon.NewBURELParams(...)), and a
// plain map works for non-Go callers of this package's conventions.
//
//	c := client.New("http://localhost:8080")
//	rel, err := c.CreateRelease(ctx, client.CreateSpec{
//		Method: "burel",
//		Params: anon.NewBURELParams(anon.BURELBeta(4)),
//		CSV:    csvData,
//	})
//	rel, err = c.WaitReady(ctx, rel.ID, 0)
//	res, err := c.Query(ctx, rel.ID, api.Query{SALo: 0, SAHi: 3})
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/pkg/api"
)

// Defaults for options left zero.
const (
	// DefaultMaxRetries bounds the 503 retry loop: one initial attempt
	// plus up to this many retries.
	DefaultMaxRetries = 3
	// DefaultRetryWait is the backoff base used when a 503 carries no
	// Retry-After header; attempt n waits base·2ⁿ.
	DefaultRetryWait = 100 * time.Millisecond
	// DefaultMaxRetryWait caps any single retry sleep, including
	// server-suggested Retry-After values.
	DefaultMaxRetryWait = 5 * time.Second
	// DefaultPollInterval is WaitReady's polling cadence.
	DefaultPollInterval = 50 * time.Millisecond
)

// Client is a typed handle on one service instance. It is safe for
// concurrent use.
type Client struct {
	base         string
	hc           *http.Client
	maxRetries   int
	retryWait    time.Duration
	maxRetryWait time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithMaxRetries bounds the 503 retry loop; 0 disables retry.
func WithMaxRetries(n int) Option { return func(c *Client) { c.maxRetries = n } }

// WithRetryWait sets the backoff base for 503s without Retry-After.
func WithRetryWait(d time.Duration) Option { return func(c *Client) { c.retryWait = d } }

// WithMaxRetryWait caps any single retry sleep.
func WithMaxRetryWait(d time.Duration) Option { return func(c *Client) { c.maxRetryWait = d } }

// New builds a client for the service at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:         strings.TrimRight(baseURL, "/"),
		hc:           &http.Client{Timeout: 60 * time.Second},
		maxRetries:   DefaultMaxRetries,
		retryWait:    DefaultRetryWait,
		maxRetryWait: DefaultMaxRetryWait,
	}
	for _, o := range opts {
		o(c)
	}
	if c.maxRetries < 0 {
		c.maxRetries = 0
	}
	return c
}

// Error is the typed form of the service's error envelope, plus the HTTP
// status it arrived with. All failing SDK calls return one (wrapped), so
// callers classify with errors.As or the Is* helpers.
type Error struct {
	// StatusCode is the HTTP status of the response.
	StatusCode int
	// Code is the stable machine-readable class (api.Code... constants).
	Code string
	// Message is the server's human-readable description.
	Message string
	// Details carries optional error-specific context.
	Details map[string]any
	// RequestID is the server's ID for the failed request (from the
	// X-Request-Id response header, or details when the header was lost
	// in transit); quote it when reporting the failure — one grep on it
	// across gateway and node logs yields the request's full trace.
	RequestID string

	// retryAfter is the server-suggested delay of a 503, consumed by the
	// retry loop; transport state, not part of the error value.
	retryAfter time.Duration
}

func (e *Error) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("%s (%d): %s [request_id=%s]", e.Code, e.StatusCode, e.Message, e.RequestID)
	}
	return fmt.Sprintf("%s (%d): %s", e.Code, e.StatusCode, e.Message)
}

// apiErrorCode extracts the wire code of err, or "" when err is not a
// service error.
func apiErrorCode(err error) string {
	var ae *Error
	if errors.As(err, &ae) {
		return ae.Code
	}
	return ""
}

// IsNotFound reports an unknown release ID.
func IsNotFound(err error) bool { return apiErrorCode(err) == api.CodeNotFound }

// IsNotReady reports a release still pending or building.
func IsNotReady(err error) bool { return apiErrorCode(err) == api.CodeNotReady }

// IsBuildFailed reports a release whose build failed permanently.
func IsBuildFailed(err error) bool { return apiErrorCode(err) == api.CodeBuildFailed }

// IsEvalFailed reports an evaluation that ended failed (from
// WaitEvaluated).
func IsEvalFailed(err error) bool { return apiErrorCode(err) == api.CodeEvalFailed }

// IsConflict reports an operation racing one already in flight, e.g. an
// Evaluate of a release whose evaluation is still running.
func IsConflict(err error) bool { return apiErrorCode(err) == api.CodeConflict }

// IsUnavailable reports a saturated or shutting-down server.
func IsUnavailable(err error) bool { return apiErrorCode(err) == api.CodeUnavailable }

// IsInvalid reports a request the server rejected as malformed: bad
// body, unknown method, invalid params, or invalid query.
func IsInvalid(err error) bool {
	switch apiErrorCode(err) {
	case api.CodeInvalidRequest, api.CodeInvalidQuery, api.CodeUnknownMethod, api.CodeInvalidParams:
		return true
	}
	return false
}

// CreateSpec describes one release to create: the method name, its
// params (any JSON-marshalable value — canonically a typed params value
// from repro/anon), the store-level knobs, and the CSV table.
type CreateSpec struct {
	Method    string
	Params    any
	QI        int
	GridCells int
	CSV       string
}

// CreateRelease submits an anonymization job and returns the accepted
// release's metadata (status pending). Poll with GetRelease or block
// with WaitReady.
func (c *Client) CreateRelease(ctx context.Context, spec CreateSpec) (api.Release, error) {
	req := api.CreateReleaseRequest{
		Method:    spec.Method,
		QI:        spec.QI,
		GridCells: spec.GridCells,
		CSV:       spec.CSV,
	}
	if spec.Params != nil {
		raw, err := json.Marshal(spec.Params)
		if err != nil {
			return api.Release{}, fmt.Errorf("client: marshaling params: %w", err)
		}
		req.Params = raw
	}
	var out api.Release
	err := c.do(ctx, http.MethodPost, "/v1/releases", req, &out)
	return out, err
}

// GetRelease fetches one release's metadata.
func (c *Client) GetRelease(ctx context.Context, id string) (api.Release, error) {
	var out api.Release
	err := c.do(ctx, http.MethodGet, "/v1/releases/"+id, nil, &out)
	return out, err
}

// ListReleases fetches every release's metadata, newest first.
func (c *Client) ListReleases(ctx context.Context) ([]api.Release, error) {
	var out api.ListReleasesResponse
	if err := c.do(ctx, http.MethodGet, "/v1/releases", nil, &out); err != nil {
		return nil, err
	}
	return out.Releases, nil
}

// WaitReady polls the release until it is terminal or ctx expires. A
// ready release returns nil error; a failed build returns the final
// metadata together with a *Error of code api.CodeBuildFailed. poll ≤ 0
// selects DefaultPollInterval.
func (c *Client) WaitReady(ctx context.Context, id string, poll time.Duration) (api.Release, error) {
	if poll <= 0 {
		poll = DefaultPollInterval
	}
	timer := time.NewTimer(poll)
	defer timer.Stop()
	for {
		rel, err := c.GetRelease(ctx, id)
		if err != nil {
			return rel, err
		}
		switch rel.Status {
		case api.StatusReady:
			return rel, nil
		case api.StatusFailed:
			return rel, &Error{
				StatusCode: http.StatusConflict,
				Code:       api.CodeBuildFailed,
				Message:    fmt.Sprintf("release %s failed: %s", id, rel.Error),
			}
		}
		// The timer may have fired during the HTTP round-trip; drain the
		// stale tick before Reset or the select below would pop it
		// immediately and the loop would poll back-to-back.
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(poll)
		select {
		case <-ctx.Done():
			return rel, ctx.Err()
		case <-timer.C:
		}
	}
}

// Query answers one aggregation query (COUNT(*) by default; set q.Agg
// for SUM/AVG/MIN/MAX and q.GroupBy for a grouped answer, whose per-cell
// estimates come back in the result's Groups) against a ready release. A
// 503 (release still building, server saturated) is retried within the
// client's retry budget. Use QueryDetailed when the response envelope —
// notably the server's request ID, the key into GetTrace — matters.
func (c *Client) Query(ctx context.Context, id string, q api.Query) (api.QueryResult, error) {
	resp, err := c.QueryDetailed(ctx, id, q)
	if err != nil {
		return api.QueryResult{}, err
	}
	return api.QueryResult{Estimate: resp.Estimate, Cached: resp.Cached, Groups: resp.Groups}, nil
}

// QueryDetailed is Query returning the full response envelope: the
// release ID echoed back plus the server's request ID — feed that ID to
// GetTrace to see where a slow answer spent its time.
func (c *Client) QueryDetailed(ctx context.Context, id string, q api.Query) (api.QueryResponse, error) {
	var out api.QueryResponse
	err := c.do(ctx, http.MethodPost, "/v1/releases/"+id+"/query", q, &out)
	return out, err
}

// QueryBatch answers up to the server's batch cap of queries against one
// release, in order.
func (c *Client) QueryBatch(ctx context.Context, id string, qs []api.Query) (*api.BatchQueryResponse, error) {
	var out api.BatchQueryResponse
	if err := c.do(ctx, http.MethodPost, "/v1/query:batch", api.BatchQueryRequest{ReleaseID: id, Queries: qs}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Evaluate submits an asynchronous privacy/utility evaluation of a ready
// release. The request re-uploads the release's original microdata CSV —
// the server never retains raw tables, and it verifies the upload
// actually reproduces the release before evaluating. Returns the job's
// pending state; poll with GetEvaluation or WaitEvaluated. A release
// whose evaluation is already in flight answers 409 (api.CodeConflict).
func (c *Client) Evaluate(ctx context.Context, id string, req api.EvaluateRequest) (api.Evaluation, error) {
	var out api.Evaluation
	err := c.do(ctx, http.MethodPost, "/v1/releases/"+id+":evaluate", req, &out)
	return out, err
}

// GetEvaluation fetches a release's evaluation state; the verdict is
// present once Status is done. Against a durable server the verdict is
// served from its persisted sidecar, surviving restarts with zero
// re-evaluation.
func (c *Client) GetEvaluation(ctx context.Context, id string) (api.Evaluation, error) {
	var out api.Evaluation
	err := c.do(ctx, http.MethodGet, "/v1/releases/"+id+"/evaluation", nil, &out)
	return out, err
}

// WaitEvaluated polls the evaluation until it is terminal or ctx
// expires. A done evaluation returns nil error; a failed one returns the
// final state together with a *Error of code api.CodeEvalFailed. poll
// ≤ 0 selects DefaultPollInterval.
func (c *Client) WaitEvaluated(ctx context.Context, id string, poll time.Duration) (api.Evaluation, error) {
	if poll <= 0 {
		poll = DefaultPollInterval
	}
	timer := time.NewTimer(poll)
	defer timer.Stop()
	for {
		ev, err := c.GetEvaluation(ctx, id)
		if err != nil {
			return ev, err
		}
		switch ev.Status {
		case api.EvalStatusDone:
			return ev, nil
		case api.EvalStatusFailed:
			return ev, &Error{
				StatusCode: http.StatusConflict,
				Code:       api.CodeEvalFailed,
				Message:    fmt.Sprintf("evaluation of %s failed: %s", id, ev.Error),
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(poll)
		select {
		case <-ctx.Done():
			return ev, ctx.Err()
		case <-timer.C:
		}
	}
}

// GetTrace fetches a retained trace by request ID. Against a gateway the
// document is assembled cluster-wide: gateway spans plus the node-local
// spans of every member that touched the request, offset-ordered. Trace
// retention is tail-sampled and bounded, so a normal fast request is
// usually a *Error of code api.CodeNotFound — error and slow requests
// are always retained (within ring capacity).
func (c *Client) GetTrace(ctx context.Context, requestID string) (api.TraceResponse, error) {
	var out api.TraceResponse
	err := c.do(ctx, http.MethodGet, "/v1/debug/traces/"+requestID, nil, &out)
	return out, err
}

// ClusterOverview fetches the gateway's rolling load overview: its own
// load series plus one per node. Only gateways serve this route; a
// single node answers 404.
func (c *Client) ClusterOverview(ctx context.Context) (api.ClusterOverviewResponse, error) {
	var out api.ClusterOverviewResponse
	err := c.do(ctx, http.MethodGet, "/v1/cluster/overview", nil, &out)
	return out, err
}

// Healthz probes the service's liveness endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// do issues one logical call: marshal, POST/GET, decode — retrying 503
// responses with the server-suggested Retry-After (bounded by the retry
// budget and the per-sleep cap) before giving up. Non-2xx responses
// decode into *Error.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: marshaling request: %w", err)
		}
	}
	for attempt := 0; ; attempt++ {
		apiErr, err := c.once(ctx, method, path, body, out)
		if err != nil {
			return err
		}
		if apiErr == nil {
			return nil
		}
		if apiErr.StatusCode != http.StatusServiceUnavailable || attempt >= c.maxRetries {
			return apiErr
		}
		if err := c.sleep(ctx, apiErr.retryAfter, attempt); err != nil {
			return err
		}
	}
}

// once performs a single HTTP exchange. A service-level failure comes
// back as (*Error, nil); transport and decoding failures as (nil, err).
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) (*Error, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("client: reading %s %s response: %w", method, path, err)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return nil, fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
			}
		}
		return nil, nil
	}
	apiErr := &Error{
		StatusCode: resp.StatusCode,
		RequestID:  resp.Header.Get(api.HeaderRequestID),
		retryAfter: parseRetryAfter(resp.Header.Get("Retry-After"), resp.Header.Get("Date")),
	}
	var env api.Envelope
	if jsonErr := json.Unmarshal(data, &env); jsonErr == nil && env.Error.Code != "" {
		apiErr.Code = env.Error.Code
		apiErr.Message = env.Error.Message
		apiErr.Details = env.Error.Details
		if apiErr.RequestID == "" {
			if id, ok := env.Error.Details["request_id"].(string); ok {
				apiErr.RequestID = id
			}
		}
	} else {
		// Not the service's envelope (a proxy, a panic page): keep the
		// body so the failure is still diagnosable.
		apiErr.Code = api.CodeInternal
		apiErr.Message = strings.TrimSpace(string(data))
	}
	return apiErr, nil
}

// sleep waits out one retry delay: the server's Retry-After when given,
// exponential backoff otherwise, both capped, and interruptible by ctx.
func (c *Client) sleep(ctx context.Context, retryAfter time.Duration, attempt int) error {
	d := retryAfter
	if d <= 0 {
		// Double per attempt, stopping at the cap before the shift can
		// overflow into a negative (and therefore zero-delay) sleep on
		// large retry budgets.
		d = c.retryWait
		for i := 0; i < attempt && d < c.maxRetryWait; i++ {
			d <<= 1
		}
	}
	if d > c.maxRetryWait || d <= 0 {
		d = c.maxRetryWait
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// parseRetryAfter reads a Retry-After header in either RFC 9110 form:
// delay-seconds, or an HTTP-date taken relative to the response's Date
// header (the server's clock, so a skewed client clock cannot stretch the
// wait; time.Now() only when Date is absent or unparseable). A date
// already in the past clamps to 0, as does garbage — both fall back to
// the client's own backoff.
func parseRetryAfter(v, date string) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	at, err := http.ParseTime(v)
	if err != nil {
		return 0
	}
	now, err := http.ParseTime(date)
	if err != nil {
		now = time.Now()
	}
	if d := at.Sub(now); d > 0 {
		return d
	}
	return 0
}
