// Package api defines the wire types of the anonymization service's
// HTTP API (v1), shared by internal/server and the Go client SDK
// (repro/pkg/client):
//
//	POST /v1/releases            CreateReleaseRequest → Release (202)
//	GET  /v1/releases            ListReleasesResponse
//	GET  /v1/releases/{id}       Release
//	POST /v1/releases/{id}/query Query → QueryResponse
//	POST /v1/query:batch         BatchQueryRequest → BatchQueryResponse
//
// Every error response, on every route, is one Envelope:
//
//	{"error": {"code": "...", "message": "...", "details": {...}}}
//
// with a stable machine-readable Code<...> constant and a human-readable
// message. 503 responses carry a Retry-After header; the client SDK
// honors it with bounded retry.
//
// The package has no dependencies beyond the standard library, so
// non-Go-SDK consumers can vendor it as the wire contract.
package api

import (
	"encoding/json"
	"time"
)

// Error is the structured error payload every route uses.
type Error struct {
	// Code is a stable, machine-readable error class (Code... constants).
	Code string `json:"code"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// Details carries optional error-specific context (e.g. the release
	// status behind a not_ready, the limit behind a too_large). Servers
	// also mirror the request ID here under "request_id" — the same value
	// the HeaderRequestID response header carries — so an error report is
	// grep-able against server logs.
	Details map[string]any `json:"details,omitempty"`
}

// Envelope wraps Error on the wire.
type Envelope struct {
	Error Error `json:"error"`
}

// HeaderRequestID is the response header every route echoes with the
// request's ID: propagated from the caller's traceparent or X-Request-Id
// header when safe, minted at the edge otherwise. One grep on this value
// across gateway and node logs yields the request's full trace.
const HeaderRequestID = "X-Request-Id"

// Error codes. The HTTP status narrows the transport semantics; the code
// names the cause.
const (
	// CodeInvalidRequest is a malformed body or missing required field (400).
	CodeInvalidRequest = "invalid_request"
	// CodeInvalidQuery is a query failing validation against the release
	// schema (400).
	CodeInvalidQuery = "invalid_query"
	// CodeUnknownMethod names an anonymization method with no registry
	// entry (400).
	CodeUnknownMethod = "unknown_method"
	// CodeInvalidParams is a params object the method rejects (400).
	CodeInvalidParams = "invalid_params"
	// CodeNotFound is an unknown release ID (404).
	CodeNotFound = "not_found"
	// CodeNotReady is a release still pending or building (503 +
	// Retry-After; poll and retry).
	CodeNotReady = "not_ready"
	// CodeBuildFailed is a release whose build failed — a permanent
	// condition for that ID (409).
	CodeBuildFailed = "build_failed"
	// CodeConflict is an operation racing one already in flight, e.g. an
	// :evaluate of a release whose evaluation is still running (409;
	// poll the existing job instead).
	CodeConflict = "conflict"
	// CodeEvalFailed is an evaluation that ended failed. The server
	// reports failed evaluations as 200s with status "failed"; SDK
	// helpers that wait for a terminal state synthesize this code.
	CodeEvalFailed = "eval_failed"
	// CodeTooLarge is an oversized body or batch (413).
	CodeTooLarge = "too_large"
	// CodeUnavailable is a saturated build queue, a server shutting
	// down, or a cluster gateway with no live replica for the request
	// (503 + Retry-After).
	CodeUnavailable = "unavailable"
	// CodeForbidden is a cluster-internal endpoint reached without the
	// cluster token, or on a node where they are disabled (403).
	CodeForbidden = "forbidden"
	// CodeInternal is an unexpected server-side failure (500).
	CodeInternal = "internal"
)

// Release lifecycle states, mirroring the store's.
const (
	StatusPending  = "pending"
	StatusBuilding = "building"
	StatusReady    = "ready"
	StatusFailed   = "failed"
)

// ReleaseSpec is the anonymization job description: the method name plus
// its raw params object (typed per method; see repro/anon for the
// canonical param schemas), and the store-level projection/index knobs.
type ReleaseSpec struct {
	Method    string    `json:"method"`
	Params    RawParams `json:"params,omitempty"`
	QI        int       `json:"qi,omitempty"`
	GridCells int       `json:"grid_cells,omitempty"`
}

// RawParams is an uninterpreted JSON object of method params.
type RawParams = json.RawMessage

// CreateReleaseRequest is the POST /v1/releases body: a spec plus the raw
// CSV table. The qi field both projects the table and relaxes parsing:
// only the first qi QI columns need be present in the CSV.
type CreateReleaseRequest struct {
	Method    string    `json:"method"`
	Params    RawParams `json:"params,omitempty"`
	QI        int       `json:"qi,omitempty"`
	GridCells int       `json:"grid_cells,omitempty"`
	CSV       string    `json:"csv"`
}

// Release is a release's externally visible state.
type Release struct {
	ID      string      `json:"id"`
	Version uint64      `json:"version"`
	Spec    ReleaseSpec `json:"spec"`
	Status  string      `json:"status"`
	// Error carries the build failure message when Status is failed.
	Error string `json:"error,omitempty"`
	// Rows is the input table size; NumECs the published group count.
	Rows   int `json:"rows"`
	NumECs int `json:"num_ecs,omitempty"`
	// AIL is the average information loss of a generalized release.
	AIL       float64   `json:"ail,omitempty"`
	CreatedAt time.Time `json:"created_at"`
	ReadyAt   time.Time `json:"ready_at,omitzero"`
	// BuildMillis is the wall-clock build duration.
	BuildMillis int64 `json:"build_ms,omitempty"`
	// Persisted reports that the release's snapshot is durably on disk in
	// the server's data directory and will survive a restart with
	// identical query answers. Always false when the server runs without
	// -data-dir.
	Persisted bool `json:"persisted,omitempty"`
}

// ListReleasesResponse is the GET /v1/releases body.
type ListReleasesResponse struct {
	Releases []Release `json:"releases"`
}

// Query is one aggregation query: range predicates over QI attribute
// indices plus an SA value-index range, aggregated by agg (COUNT(*) when
// empty) and optionally grouped over one or two further QI dimensions.
type Query struct {
	Dims []int     `json:"dims,omitempty"`
	Lo   []float64 `json:"lo,omitempty"`
	Hi   []float64 `json:"hi,omitempty"`
	SALo int       `json:"sa_lo"`
	SAHi int       `json:"sa_hi"`
	// Agg selects the aggregate: "count" (default when empty), "sum",
	// "avg", "min", or "max", over SA value indices.
	Agg string `json:"agg,omitempty"`
	// GroupBy lists QI dimensions to group over; they must be disjoint
	// from Dims. The response carries one GroupResult per cell.
	GroupBy []int `json:"group_by,omitempty"`
	// GroupBuckets optionally gives the per-GroupBy-dimension cell
	// count; zero entries select the server default (one cell per
	// hierarchy leaf on categorical dimensions).
	GroupBuckets []int `json:"group_buckets,omitempty"`
}

// GroupResult is one cell of a grouped query's answer: the cell's key
// range per GroupBy dimension — half-open [lo, hi) on numeric
// dimensions (the last cell closes at the domain maximum), inclusive
// leaf-rank ranges on categorical ones — plus its aggregate estimate.
type GroupResult struct {
	Lo       []float64 `json:"lo"`
	Hi       []float64 `json:"hi"`
	Estimate float64   `json:"estimate"`
}

// QueryResult is the outcome of one query of a batch. Estimates may be
// negative for perturbed releases (the reconstruction estimator is
// unbiased, not non-negative); clients clamp if they need counts.
type QueryResult struct {
	// Estimate answers an ungrouped query; 0 for grouped queries, whose
	// answers ride in Groups.
	Estimate float64 `json:"estimate"`
	// Cached reports a result-cache hit (every cell, for a grouped
	// query).
	Cached bool `json:"cached,omitempty"`
	// Groups holds the per-cell results of a GROUP BY query, dim-major
	// in GroupBy order; absent for ungrouped queries.
	Groups []GroupResult `json:"groups,omitempty"`
}

// QueryResponse is the POST /v1/releases/{id}/query body.
type QueryResponse struct {
	ReleaseID string  `json:"release_id"`
	Estimate  float64 `json:"estimate"`
	Cached    bool    `json:"cached,omitempty"`
	// Groups holds the per-cell results when the query grouped.
	Groups []GroupResult `json:"groups,omitempty"`
	// RequestID mirrors the HeaderRequestID response header into the body,
	// so tools that persist responses (loadgen reports) can later fetch
	// the request's trace from /v1/debug/traces/{id}.
	RequestID string `json:"request_id,omitempty"`
}

// BatchQueryRequest is the POST /v1/query:batch body: one release ID and
// up to the server's batch cap of queries, answered in order.
type BatchQueryRequest struct {
	ReleaseID string  `json:"release_id"`
	Queries   []Query `json:"queries"`
}

// BatchQueryResponse carries the per-query results in request order plus
// the batch's cache tallies.
type BatchQueryResponse struct {
	ReleaseID string        `json:"release_id"`
	Results   []QueryResult `json:"results"`
	CacheHits int           `json:"cache_hits"`
	// RequestID mirrors the HeaderRequestID response header into the body
	// (see QueryResponse.RequestID).
	RequestID string `json:"request_id,omitempty"`
}

// Evaluation lifecycle states, mirroring the eval service's. An
// evaluation is terminal at EvalStatusDone or EvalStatusFailed; clients
// poll through pending/running like they poll a building release.
const (
	EvalStatusPending = "pending"
	EvalStatusRunning = "running"
	EvalStatusDone    = "done"
	EvalStatusFailed  = "failed"
)

// EvaluateRequest is the POST /v1/releases/{id}:evaluate body. CSV is the
// release's original microdata, re-uploaded: the serving store keeps only
// the published artifact, never the raw table, so the evaluation job needs
// the ground truth handed back to it (and verifies the upload actually
// reproduces the release before trusting it). The remaining fields tune
// the attack/utility workload; zero values select server defaults.
type EvaluateRequest struct {
	CSV string `json:"csv"`
	// Queries is the utility workload size per aggregate (default 200).
	Queries int `json:"queries,omitempty"`
	// Lambda is the number of QI predicates per workload query (§6.2);
	// default 2, clamped to the release's QI dimensionality.
	Lambda int `json:"lambda,omitempty"`
	// Theta is the expected workload query selectivity (default 0.1).
	Theta float64 `json:"theta,omitempty"`
	// Seed drives every random choice of the job (corruption sampling,
	// workload generation); identical seeds yield byte-identical verdicts.
	// Default 1.
	Seed int64 `json:"seed,omitempty"`
	// CorruptionFraction is the fraction of tuples the §7 corruption
	// adversary already knows (default 0.1).
	CorruptionFraction float64 `json:"corruption_fraction,omitempty"`
	// DeFinettiIters is the de Finetti attack's iteration count (default 3).
	DeFinettiIters int `json:"definetti_iters,omitempty"`
}

// EvalPrivacy is the achieved-privacy block of a verdict: what the
// release measurably provides, computed from the recovered partition
// (present for generalized and ℓ-diverse anatomy releases).
type EvalPrivacy struct {
	NumECs    int     `json:"num_ecs"`
	MinECSize int     `json:"min_ec_size"`
	AIL       float64 `json:"ail"`
	// AchievedBeta is the maximum positive relative frequency gain of any
	// SA value in any group ("Real β").
	AchievedBeta float64 `json:"achieved_beta"`
	// MaxT and AvgT are the max/average EMD between group and overall SA
	// distributions (t-closeness actually achieved).
	MaxT float64 `json:"max_t"`
	AvgT float64 `json:"avg_t"`
	// MinL and AvgL are the min/average distinct SA values per group.
	MinL int     `json:"min_l"`
	AvgL float64 `json:"avg_l"`
}

// EvalAttacks is the attack-suite block of a verdict. All accuracies and
// posteriors are fractions in [0, 1]; compare them against Baseline, the
// no-release prior (the modal SA share an adversary gets for free).
type EvalAttacks struct {
	Baseline float64 `json:"baseline"`
	// DeFinetti is the record-linkage accuracy of the de Finetti attack.
	DeFinetti float64 `json:"definetti"`
	// NaiveBayes is the Eq. 15–17 classifier's accuracy on the original
	// table.
	NaiveBayes float64 `json:"naive_bayes"`
	// CorruptionAvg and CorruptionMax are the §7 corruption adversary's
	// average and worst-case posterior in an uncorrupted tuple's true SA
	// value after learning CorruptionFraction of the table.
	CorruptionFraction float64 `json:"corruption_fraction"`
	CorruptionAvg      float64 `json:"corruption_avg"`
	CorruptionMax      float64 `json:"corruption_max"`
}

// EvalUtility is the utility block of a verdict: median relative error of
// COUNT and SUM estimates served from the release against ground truth
// computed on the uploaded microdata, over a seeded random workload.
// Queries with zero ground truth are dropped (as in §6.2); the *Queries
// fields count the queries actually evaluated.
type EvalUtility struct {
	Queries           int     `json:"queries"`
	CountQueries      int     `json:"count_queries"`
	CountMedianRelErr float64 `json:"count_median_rel_err"`
	SumQueries        int     `json:"sum_queries"`
	SumMedianRelErr   float64 `json:"sum_median_rel_err"`
}

// EvalVerdict is an evaluation job's result. It deliberately carries no
// release ID, timestamps, or durations: identical jobs on identical
// release content must produce byte-identical verdicts (the repeatability
// contract the sidecar checksum and CI curve gate rest on). Job identity
// and timing live on the surrounding Evaluation.
type EvalVerdict struct {
	Method string `json:"method"`
	Kind   string `json:"kind"`
	Rows   int    `json:"rows"`
	Seed   int64  `json:"seed"`

	// Privacy and Attacks are absent for kinds without per-group SA
	// information (anatomy baseline, perturbation); AttacksSkipped then
	// records why.
	Privacy        *EvalPrivacy `json:"privacy,omitempty"`
	Attacks        *EvalAttacks `json:"attacks,omitempty"`
	AttacksSkipped string       `json:"attacks_skipped,omitempty"`

	Utility EvalUtility `json:"utility"`
}

// Evaluation is a release's evaluation state: the GET
// /v1/releases/{id}/evaluation body, and the 202 body of a submitted
// :evaluate job.
type Evaluation struct {
	ReleaseID string `json:"release_id"`
	Status    string `json:"status"`
	// Error carries the failure message when Status is failed.
	Error       string    `json:"error,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
	// EvalMillis is the wall-clock duration of the finished job.
	EvalMillis int64 `json:"eval_ms,omitempty"`
	// Persisted reports that the verdict sidecar is durably on disk next
	// to the release's snapshot and will survive a restart.
	Persisted bool `json:"persisted,omitempty"`
	// Verdict is present once Status is done.
	Verdict *EvalVerdict `json:"verdict,omitempty"`
}

// ClusterNode is one member's state in a cluster gateway's view.
type ClusterNode struct {
	ID  string `json:"id"`
	URL string `json:"url"`
	// Alive reports the gateway's circuit breaker for the node: false
	// while the node is considered down and excluded from routing.
	Alive bool `json:"alive"`
	// Inflight is the number of gateway requests currently outstanding
	// against the node.
	Inflight int64 `json:"inflight"`
	// Failures counts consecutive failed health probes.
	Failures int64 `json:"failures,omitempty"`
	// ProbeMillis is the last health-probe round-trip time in
	// milliseconds; 0 until the first probe completes.
	ProbeMillis float64 `json:"probe_millis,omitempty"`
	// LastError is the most recent probe failure, "" while the node is
	// healthy.
	LastError string `json:"last_error,omitempty"`
}

// ClusterStatusResponse is the GET /v1/cluster/status body a gateway
// serves: the configured replication factor and every member's state.
type ClusterStatusResponse struct {
	Replication int           `json:"replication"`
	Nodes       []ClusterNode `json:"nodes"`
}

// TraceSpan is one stage timing of a retained trace, offset-ordered
// within the assembled document.
type TraceSpan struct {
	// Origin is the process that recorded the span: a node ID, or
	// "gateway".
	Origin string `json:"origin"`
	// Stage names the hop, dot-namespaced by layer (e.g. "engine.estimate").
	Stage string `json:"stage"`
	// Node is the cluster member a cross-process hop ran against
	// (e.g. on "gateway.subbatch" spans); "" for in-process stages.
	Node string `json:"node,omitempty"`
	// OffsetMicros is the span start relative to the trace start.
	OffsetMicros int64 `json:"offset_us"`
	// Micros is the span's duration.
	Micros int64 `json:"us"`
}

// TraceResponse is the GET /v1/debug/traces/{id} body: one retained
// request trace. A gateway assembles it from its own spans plus the
// spans fetched from every node that touched the request; a node serves
// its local view. 404 (CodeNotFound) means no process retained the
// trace — it was sampled out or already evicted from the bounded ring.
type TraceResponse struct {
	RequestID string `json:"request_id"`
	// Route is the instrumented route name at the process that answered
	// (the gateway's, on assembled traces).
	Route     string `json:"route,omitempty"`
	ReleaseID string `json:"release_id,omitempty"`
	// Status is the HTTP status the client saw; ErrorCode the api error
	// code on failures.
	Status    int    `json:"status,omitempty"`
	ErrorCode string `json:"error_code,omitempty"`
	// Retained is why the trace was kept: "error", "slow", or "sampled".
	Retained string `json:"retained,omitempty"`
	// StartedAt anchors the span offsets in wall-clock time.
	StartedAt      time.Time `json:"started_at"`
	DurationMicros int64     `json:"duration_us"`
	// Origins lists the processes that contributed spans, sorted, with
	// "gateway" first when present.
	Origins []string `json:"origins,omitempty"`
	// DroppedSpans counts spans beyond the per-trace bound that were not
	// retained, summed over origins.
	DroppedSpans int `json:"dropped_spans,omitempty"`
	// Spans is the assembled span list, ordered by offset.
	Spans []TraceSpan `json:"spans"`
}

// LoadSample is one self-observed load sample of a process, the unit of
// the cluster overview's rolling per-node series.
type LoadSample struct {
	UnixMillis int64 `json:"unix_ms"`
	// QPS is work completed per second since the previous sample: engine
	// queries on nodes, HTTP requests on the gateway.
	QPS float64 `json:"qps"`
	// P50/P95/P99Millis are request-latency quantiles over the process
	// lifetime, in milliseconds.
	P50Millis float64 `json:"p50_ms"`
	P95Millis float64 `json:"p95_ms"`
	P99Millis float64 `json:"p99_ms"`
	// Inflight is the number of requests being served at sample time.
	Inflight int64 `json:"inflight"`
	// QueueDepth is the engine jobs waiting for a worker (0 on the
	// gateway, which has no engine).
	QueueDepth int    `json:"queue_depth"`
	HeapBytes  uint64 `json:"heap_bytes"`
	Goroutines int    `json:"goroutines"`
}

// LoadSeries is one process's rolling load history, oldest sample first.
type LoadSeries struct {
	// Origin is the process: a node ID, or "gateway".
	Origin  string       `json:"origin"`
	Samples []LoadSample `json:"samples"`
}

// OverviewNode is one member's entry in the cluster overview.
type OverviewNode struct {
	ID  string `json:"id"`
	URL string `json:"url"`
	// Alive mirrors the gateway's circuit breaker at assembly time.
	Alive bool `json:"alive"`
	// Error is why the node's series could not be fetched ("" on
	// success).
	Error string `json:"error,omitempty"`
	// Load is the node's series; absent when the fetch failed.
	Load *LoadSeries `json:"load,omitempty"`
}

// ClusterOverviewResponse is the GET /v1/cluster/overview body: the
// gateway's own load series plus every member's, the ranking feed for
// load-aware placement and capacity decisions.
type ClusterOverviewResponse struct {
	Replication int            `json:"replication"`
	Gateway     LoadSeries     `json:"gateway"`
	Nodes       []OverviewNode `json:"nodes"`
}
