// Command datagen writes a synthetic CENSUS table (Table 3 schema) as CSV.
//
// Usage:
//
//	datagen [-n N] [-seed S] [-noise F] [-o FILE]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/census"
)

func main() {
	n := flag.Int("n", 500000, "number of tuples")
	seed := flag.Int64("seed", 42, "generator seed")
	noise := flag.Float64("noise", 0, "fraction of salary assignments independent of QI (default 0.5)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	t := census.Generate(census.Options{N: *n, Seed: *seed, CorrelationNoise: *noise})

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := t.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}
