// Command benchdiff records and gates `go test -bench` results.
//
// It reads benchmark output on stdin (echoing it through, so a CI log
// still shows the raw numbers) and either records the parsed results to
// a JSON baseline or checks them against one:
//
//	go test ./internal/release/ -run xxx -bench 'DecodeSnapshot10kECs' \
//	    | benchdiff -record BENCH_9.json
//	go test ./internal/release/ -run xxx -bench 'DecodeSnapshot10kECs' \
//	    | benchdiff -check BENCH_9.json -tol 0.25
//
// -check fails (exit 1) when any gated benchmark runs more than tol
// slower (ns/op) than recorded, or is missing from the input — a gate
// that silently stops gating is worse than one that fails. The gated set
// is the whole baseline, narrowed by -only <regexp> when the check run
// exercises a subset. Benchmarks in the input but not in the baseline
// are reported and ignored, so adding a benchmark does not break
// existing gates.
//
// The baseline file is JSON with the measurements under "go_bench" and
// provenance under "meta"; -record preserves any other top-level keys
// (e.g. an embedded loadgen report), so one BENCH_*.json can carry a
// release's whole benchmark story.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// result is one benchmark's recorded measurements. NsPerOp is the gated
// metric; MBPerS rides along for human comparison when the benchmark
// reports throughput.
type result struct {
	NsPerOp float64 `json:"ns_per_op"`
	MBPerS  float64 `json:"mb_per_s,omitempty"`
}

func main() {
	record := flag.String("record", "", "write parsed results to this baseline file")
	check := flag.String("check", "", "compare parsed results against this baseline file")
	tol := flag.Float64("tol", 0.25, "allowed fractional ns/op regression before -check fails")
	only := flag.String("only", "", "with -check, gate only baseline benchmarks matching this regexp (default: all)")
	flag.Parse()
	if (*record == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "benchdiff: exactly one of -record or -check is required")
		os.Exit(2)
	}

	got, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if len(got) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines on stdin")
		os.Exit(2)
	}

	if *record != "" {
		if err := recordBaseline(*record, got); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchdiff: recorded %d benchmarks to %s\n", len(got), *record)
		return
	}

	base, err := readBaseline(*check)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if *only != "" {
		re, err := regexp.Compile(*only)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: -only: %v\n", err)
			os.Exit(2)
		}
		for name := range base {
			if !re.MatchString(name) {
				delete(base, name)
			}
		}
		if len(base) == 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: -only %q matches nothing in the baseline\n", *only)
			os.Exit(2)
		}
	}
	if failed := diff(base, got, *tol); failed {
		os.Exit(1)
	}
}

// benchLine matches one benchmark result. The name's trailing
// -<GOMAXPROCS> is stripped so baselines transfer across core counts.
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(-\d+)?\s`)

// parseBench extracts benchmark results from `go test -bench` output,
// echoing every line to stdout unchanged.
func parseBench(in *os.File) (map[string]result, error) {
	out := make(map[string]result)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		fields := strings.Fields(line)
		var r result
		seen := false
		for i := 2; i < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			switch fields[i] {
			case "ns/op":
				r.NsPerOp, seen = v, true
			case "MB/s":
				r.MBPerS = v
			}
		}
		if !seen {
			return nil, fmt.Errorf("benchmark line without ns/op: %q", line)
		}
		out[m[1]] = r
	}
	return out, sc.Err()
}

// recordBaseline merges the results into "go_bench" (so several bench
// runs can accrete into one baseline), preserving any other top-level
// keys an existing baseline carries.
func recordBaseline(path string, got map[string]result) error {
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
	}
	merged := map[string]result{}
	if prev, ok := doc["go_bench"]; ok {
		if err := json.Unmarshal(prev, &merged); err != nil {
			return fmt.Errorf("existing %s go_bench: %w", path, err)
		}
	}
	for name, r := range got {
		merged[name] = r
	}
	var err error
	if doc["go_bench"], err = json.Marshal(merged); err != nil {
		return err
	}
	meta := map[string]string{"generated_at": time.Now().UTC().Format(time.RFC3339)}
	if doc["meta"], err = json.Marshal(meta); err != nil {
		return err
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readBaseline(path string) (map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		GoBench map[string]result `json:"go_bench"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(doc.GoBench) == 0 {
		return nil, fmt.Errorf("%s has no go_bench results to gate against", path)
	}
	return doc.GoBench, nil
}

// diff compares current results against the baseline and reports one
// line per benchmark; returns true when the gate should fail.
func diff(base, got map[string]result, tol float64) bool {
	failed := false
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	// Sorted output: the gate's verdict should read the same run to run.
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		want := base[name]
		have, ok := got[name]
		if !ok {
			fmt.Printf("benchdiff: FAIL %-32s missing from input (baseline %.0f ns/op)\n", name, want.NsPerOp)
			failed = true
			continue
		}
		ratio := have.NsPerOp/want.NsPerOp - 1
		verdict := "ok  "
		if ratio > tol {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("benchdiff: %s %-32s %12.0f ns/op vs baseline %12.0f (%+.1f%%, tol %+.0f%%)\n",
			verdict, name, have.NsPerOp, want.NsPerOp, 100*ratio, 100*tol)
	}
	for name := range got {
		if _, ok := base[name]; !ok {
			fmt.Printf("benchdiff: note %-32s not in baseline; ignored\n", name)
		}
	}
	return failed
}
