// Command reconstruct consumes a perturbed release (cmd/perturb output plus
// the PM matrix) and estimates the true SA counts of a selection — the data
// recipient's side of §5. Without predicates it reconstructs the whole
// table's SA distribution.
//
// Usage:
//
//	reconstruct -pm pm.csv [-i noisy.csv] [-where Attr=lo..hi]...
//
// Predicates select ranges over numeric attributes ("Age=30..40") or
// single leaves of categorical ones ("Gender=male").
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/census"
	"repro/internal/matrix"
	"repro/internal/microdata"
)

// whereFlag collects repeated -where predicates.
type whereFlag []string

func (w *whereFlag) String() string { return strings.Join(*w, ",") }
func (w *whereFlag) Set(v string) error {
	*w = append(*w, v)
	return nil
}

func main() {
	pmPath := flag.String("pm", "", "perturbation matrix CSV written by cmd/perturb (required)")
	in := flag.String("i", "", "perturbed CSV (default stdin)")
	var wheres whereFlag
	flag.Var(&wheres, "where", "predicate Attr=lo..hi or Attr=value (repeatable)")
	flag.Parse()

	if *pmPath == "" {
		die(fmt.Errorf("-pm is required"))
	}
	pm, err := readMatrix(*pmPath)
	if err != nil {
		die(err)
	}
	inv, err := matrix.Inverse(pm)
	if err != nil {
		die(fmt.Errorf("inverting PM: %w", err))
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			die(err)
		}
		defer f.Close()
		r = f
	}
	schema := census.Schema()
	table, err := microdata.ReadCSV(bufio.NewReader(r), schema)
	if err != nil {
		die(err)
	}
	match, err := compilePredicates(schema, wheres)
	if err != nil {
		die(err)
	}

	observed := make([]float64, len(schema.SA.Values))
	selected := 0
	for _, tp := range table.Tuples {
		if match(tp) {
			observed[tp.SA]++
			selected++
		}
	}
	if pm.Rows != len(observed) {
		die(fmt.Errorf("PM is %d×%d but SA domain has %d values", pm.Rows, pm.Cols, len(observed)))
	}
	recon, err := inv.MulVec(observed)
	if err != nil {
		die(err)
	}

	fmt.Printf("selected %d of %d tuples\n", selected, table.Len())
	fmt.Printf("%-10s %10s %12s\n", "value", "observed", "estimated")
	for i, v := range schema.SA.Values {
		fmt.Printf("%-10s %10.0f %12.1f\n", v, observed[i], recon[i])
	}
}

// compilePredicates builds a tuple filter from -where arguments.
func compilePredicate(schema *microdata.Schema, raw string) (func(microdata.Tuple) bool, error) {
	parts := strings.SplitN(raw, "=", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("bad predicate %q (want Attr=lo..hi)", raw)
	}
	name, spec := parts[0], parts[1]
	for j, a := range schema.QI {
		if a.Name != name {
			continue
		}
		j := j
		if a.Kind == microdata.Categorical {
			rank, ok := a.Hierarchy.Rank(spec)
			if !ok {
				return nil, fmt.Errorf("%s=%q: unknown value", name, spec)
			}
			want := float64(rank)
			return func(tp microdata.Tuple) bool { return tp.QI[j] == want }, nil
		}
		bounds := strings.SplitN(spec, "..", 2)
		if len(bounds) != 2 {
			return nil, fmt.Errorf("%s=%q: want lo..hi", name, spec)
		}
		lo, err := strconv.ParseFloat(bounds[0], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad lower bound %q", name, bounds[0])
		}
		hi, err := strconv.ParseFloat(bounds[1], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad upper bound %q", name, bounds[1])
		}
		return func(tp microdata.Tuple) bool { return tp.QI[j] >= lo && tp.QI[j] <= hi }, nil
	}
	return nil, fmt.Errorf("unknown attribute %q", name)
}

func compilePredicates(schema *microdata.Schema, wheres []string) (func(microdata.Tuple) bool, error) {
	var preds []func(microdata.Tuple) bool
	for _, w := range wheres {
		p, err := compilePredicate(schema, w)
		if err != nil {
			return nil, err
		}
		preds = append(preds, p)
	}
	return func(tp microdata.Tuple) bool {
		for _, p := range preds {
			if !p(tp) {
				return false
			}
		}
		return true
	}, nil
}

// readMatrix parses the square CSV matrix written by cmd/perturb.
func readMatrix(path string) (*matrix.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows [][]float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		row := make([]float64, len(fields))
		for i, fv := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(fv), 64)
			if err != nil {
				return nil, fmt.Errorf("pm row %d col %d: %w", len(rows)+1, i+1, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 || len(rows) != len(rows[0]) {
		return nil, fmt.Errorf("pm matrix must be square and non-empty, got %d rows", len(rows))
	}
	m := matrix.New(len(rows), len(rows))
	for i, row := range rows {
		for j, v := range row {
			m.Set(i, j, v)
		}
	}
	return m, nil
}

func die(err error) {
	fmt.Fprintf(os.Stderr, "reconstruct: %v\n", err)
	os.Exit(1)
}
