// Command perturb randomizes the SA column of a CENSUS-schema CSV with the
// paper's (ρ1i, ρ2i)-privacy mechanism (§5) and writes the perturbed table;
// the perturbation matrix PM needed for reconstruction goes to stderr (or a
// file via -pm).
//
// Usage:
//
//	perturb -beta B [-seed S] [-i FILE] [-o FILE] [-pm FILE]
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/anon"
	"repro/internal/census"
	"repro/internal/microdata"
)

func main() {
	beta := flag.Float64("beta", 4, "β-likeness threshold")
	seed := flag.Int64("seed", 1, "randomization seed")
	in := flag.String("i", "", "input CSV (default stdin)")
	out := flag.String("o", "", "output CSV (default stdout)")
	pmOut := flag.String("pm", "", "write the perturbation matrix PM as CSV to this file")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			die(err)
		}
		defer f.Close()
		r = f
	}
	table, err := microdata.ReadCSV(bufio.NewReader(r), census.Schema())
	if err != nil {
		die(err)
	}

	rel, err := anon.Anonymize(context.Background(), table,
		anon.NewPerturbParams(anon.PerturbBeta(*beta), anon.PerturbSeed(*seed)))
	if err != nil {
		die(err)
	}
	scheme, pert := rel.Scheme, rel.Perturbed

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			die(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := pert.WriteCSV(bw); err != nil {
		die(err)
	}
	if err := bw.Flush(); err != nil {
		die(err)
	}

	if *pmOut != "" {
		f, err := os.Create(*pmOut)
		if err != nil {
			die(err)
		}
		defer f.Close()
		pw := bufio.NewWriter(f)
		m := scheme.PM
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				if j > 0 {
					fmt.Fprint(pw, ",")
				}
				fmt.Fprintf(pw, "%.12g", m.At(i, j))
			}
			fmt.Fprintln(pw)
		}
		if err := pw.Flush(); err != nil {
			die(err)
		}
	}
	fmt.Fprintf(os.Stderr, "perturb: %d tuples randomized; %d active SA values; C^L_M=%.6g\n",
		pert.Len(), len(scheme.Active), scheme.CLM)
}

func die(err error) {
	fmt.Fprintf(os.Stderr, "perturb: %v\n", err)
	os.Exit(1)
}
