// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-full] [-n N] [-queries Q] [-seed S] [-only LIST]
//
// By default the quick configuration runs (50K tuples, 800 queries); -full
// switches to the paper's scale (500K tuples, 10K queries). -only selects a
// comma-separated subset of {4a,4b,4c,5,6,7,8a,8b,8c,8d,9a,9b,9c,9d,t7,nb}.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	full := flag.Bool("full", false, "run at the paper's scale (500K tuples, 10K queries)")
	n := flag.Int("n", 0, "override table size")
	queries := flag.Int("queries", 0, "override query workload size")
	seed := flag.Int64("seed", 0, "override RNG seed")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	flag.Parse()

	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Paper()
	}
	if *n > 0 {
		cfg.N = *n
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	type figExp struct {
		id  string
		run func(experiments.Config) (metrics.Figure, error)
	}
	figs := []figExp{
		{"4a", experiments.Fig4a},
		{"4b", experiments.Fig4b},
		{"4c", experiments.Fig4c},
		{"8a", experiments.Fig8a},
		{"8b", experiments.Fig8b},
		{"8c", experiments.Fig8c},
		{"8d", experiments.Fig8d},
		{"9a", experiments.Fig9a},
		{"9b", experiments.Fig9b},
		{"9c", experiments.Fig9c},
		{"9d", experiments.Fig9d},
		{"nb", experiments.FigNB},
	}
	type genExp struct {
		id  string
		run func(experiments.Config) (experiments.GenResult, error)
	}
	gens := []genExp{
		{"5", experiments.Fig5},
		{"6", experiments.Fig6},
		{"7", experiments.Fig7},
	}

	fmt.Printf("config: N=%d queries=%d seed=%d\n\n", cfg.N, cfg.Queries, cfg.Seed)
	start := time.Now()
	for _, g := range gens {
		if !selected(g.id) {
			continue
		}
		res, err := g.run(cfg)
		if err != nil {
			fail(g.id, err)
		}
		fmt.Println(res.AIL.Render())
		fmt.Println(res.Time.Render())
	}
	for _, f := range figs {
		if !selected(f.id) {
			continue
		}
		fig, err := f.run(cfg)
		if err != nil {
			fail(f.id, err)
		}
		fmt.Println(fig.Render())
	}
	if selected("t7") {
		rows, err := experiments.Table7(cfg)
		if err != nil {
			fail("t7", err)
		}
		fmt.Println(experiments.RenderTable7(rows))
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
}

func fail(id string, err error) {
	fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
	os.Exit(1)
}
