// Command serve runs the anonymization/query HTTP service: upload a CSV
// with anonymization parameters, poll the release as a worker pool builds
// it, then issue COUNT(*) estimates — singly or in batches through
// POST /v1/query:batch — answered by the batch engine over the
// per-release EC index with a sharded result cache. See README.md for
// the API with curl examples.
//
// With -data-dir the store is durable: ready releases persist as
// checksummed snapshot files plus an append-only manifest, and a restart
// against the same directory recovers every release — serving identical
// query answers with zero re-anonymization.
//
// Usage:
//
//	serve [-addr :8080] [-workers N] [-max-body-mb M] [-data-dir DIR]
//	      [-query-workers N] [-cache-capacity N] [-max-batch N]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/release"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", release.DefaultWorkers, "concurrent anonymization builds")
	maxBodyMB := flag.Int64("max-body-mb", 256, "request body limit in MiB")
	queryWorkers := flag.Int("query-workers", 0, "query engine pool size (0 = GOMAXPROCS)")
	cacheCapacity := flag.Int("cache-capacity", 0, "result cache entries (0 = default, negative = disabled)")
	maxBatch := flag.Int("max-batch", 0, "max queries per batch request (0 = default)")
	dataDir := flag.String("data-dir", "", "persist releases to this directory and recover them on restart (empty = memory-only)")
	flag.Parse()

	var store *release.Store
	if *dataDir != "" {
		var err error
		if store, err = release.Open(*dataDir, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "serve: opening data dir: %v\n", err)
			os.Exit(1)
		}
		rec := store.Recovery()
		fmt.Fprintf(os.Stderr, "serve: data dir %s: recovered %d ready, %d failed, %d interrupted, %d corrupt (%d bytes on disk)\n",
			*dataDir, rec.Ready, rec.Failed, rec.Interrupted, rec.Corrupt, store.DiskSize())
	} else {
		store = release.NewStore(*workers)
	}
	api := server.New(store, server.Options{
		MaxBodyBytes: *maxBodyMB << 20,
		Engine: engine.Options{
			Workers:       *queryWorkers,
			CacheCapacity: *cacheCapacity,
			MaxBatch:      *maxBatch,
		},
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	durability := "memory-only"
	if store.Durable() {
		durability = "durable: " + store.Dir()
	}
	fmt.Fprintf(os.Stderr, "serve: listening on %s (%d build workers, %s)\n", *addr, *workers, durability)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
	case <-sig:
		fmt.Fprintln(os.Stderr, "serve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "serve: shutdown: %v\n", err)
		}
		api.Close()
		store.Close()
	}
}
