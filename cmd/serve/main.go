// Command serve runs the anonymization/query HTTP service: upload a CSV
// with anonymization parameters, poll the release as a worker pool builds
// it, then issue COUNT(*) estimates — singly or in batches through
// POST /v1/query:batch — answered by the batch engine over the
// per-release EC index with a sharded result cache. See README.md for
// the API with curl examples.
//
// Usage:
//
//	serve [-addr :8080] [-workers N] [-max-body-mb M]
//	      [-query-workers N] [-cache-capacity N] [-max-batch N]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/release"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", release.DefaultWorkers, "concurrent anonymization builds")
	maxBodyMB := flag.Int64("max-body-mb", 256, "request body limit in MiB")
	queryWorkers := flag.Int("query-workers", 0, "query engine pool size (0 = GOMAXPROCS)")
	cacheCapacity := flag.Int("cache-capacity", 0, "result cache entries (0 = default, negative = disabled)")
	maxBatch := flag.Int("max-batch", 0, "max queries per batch request (0 = default)")
	flag.Parse()

	store := release.NewStore(*workers)
	api := server.New(store, server.Options{
		MaxBodyBytes: *maxBodyMB << 20,
		Engine: engine.Options{
			Workers:       *queryWorkers,
			CacheCapacity: *cacheCapacity,
			MaxBatch:      *maxBatch,
		},
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "serve: listening on %s (%d build workers)\n", *addr, *workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
	case <-sig:
		fmt.Fprintln(os.Stderr, "serve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "serve: shutdown: %v\n", err)
		}
		api.Close()
		store.Close()
	}
}
