// Command serve runs the anonymization/query HTTP service: upload a CSV
// with anonymization parameters, poll the release as a worker pool builds
// it, then issue COUNT(*) estimates — singly or in batches through
// POST /v1/query:batch — answered by the batch engine over the
// per-release EC index with a sharded result cache. See README.md for
// the API with curl examples.
//
// With -data-dir the store is durable: ready releases persist as
// checksummed snapshot files plus an append-only manifest, and a restart
// against the same directory recovers every release — serving identical
// query answers with zero re-anonymization.
//
// With -node-id and -cluster-token the process is a cluster node: its
// release IDs are node-prefixed (globally unique across the cluster) and
// the authenticated internal snapshot-replication endpoints are enabled.
//
// With -gateway the process is instead a cluster front end: it serves
// the same /v1 API by proxying over the nodes listed in -nodes,
// replicating ready snapshots to -replication nodes and scattering
// batch queries across live replicas. Node usage:
//
//	serve [-addr :8080] [-workers N] [-max-body-mb M] [-data-dir DIR]
//	      [-query-workers N] [-cache-capacity N] [-max-batch N]
//	      [-node-id n1] [-cluster-token TOK]
//	      [-log-level info] [-slow-query-ms 0]
//	      [-trace-capacity N] [-trace-sample N] [-trace-slow-ms MS]
//
// Gateway usage:
//
//	serve -gateway -nodes n1=http://h1:8080,n2=http://h2:8080,... \
//	      [-addr :8090] [-replication 2] [-cluster-token TOK] \
//	      [-probe-interval 2s] [-reconcile-interval 15s] \
//	      [-log-level info] [-slow-query-ms 0] \
//	      [-trace-capacity N] [-trace-sample N] [-trace-slow-ms MS]
//
// Both roles emit structured JSON logs (log/slog) on stderr at
// -log-level, echo an X-Request-Id header on every response, and — with
// -slow-query-ms > 0 — log the full per-stage span breakdown of any
// request slower than the threshold, keyed by that request ID.
//
// Both roles also retain finished traces in a bounded in-memory ring
// (tail-sampled: errors and slow requests always, normal traffic 1 in
// -trace-sample), served back on GET /v1/debug/traces/{id} — against a
// gateway, assembled cluster-wide from every node that touched the
// request. cmd/tracecat pretty-prints them; a gateway additionally
// serves the rolling per-process load overview on
// GET /v1/cluster/overview.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/obs/tracestore"
	"repro/internal/release"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", release.DefaultWorkers, "concurrent anonymization builds")
	evalWorkers := flag.Int("eval-workers", 0, "concurrent evaluation jobs (0 = default)")
	maxBodyMB := flag.Int64("max-body-mb", 256, "request body limit in MiB")
	queryWorkers := flag.Int("query-workers", 0, "query engine pool size (0 = GOMAXPROCS)")
	cacheCapacity := flag.Int("cache-capacity", 0, "result cache entries (0 = default, negative = disabled)")
	maxBatch := flag.Int("max-batch", 0, "max queries per batch request (0 = default)")
	dataDir := flag.String("data-dir", "", "persist releases to this directory and recover them on restart (empty = memory-only)")
	nodeID := flag.String("node-id", "", "cluster node identity; prefixes minted release IDs (empty = single-node)")
	clusterToken := flag.String("cluster-token", "", "shared secret for the internal snapshot-replication endpoints")
	gateway := flag.Bool("gateway", false, "run as a cluster gateway over -nodes instead of a serving node")
	nodes := flag.String("nodes", "", "gateway mode: comma-separated id=url cluster members")
	replication := flag.Int("replication", 2, "gateway mode: replicas per release (R)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "gateway mode: /healthz probing cadence")
	reconcileInterval := flag.Duration("reconcile-interval", 15*time.Second, "gateway mode: replication reconcile cadence")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	slowQueryMS := flag.Int64("slow-query-ms", 0, "log the full span breakdown of any request slower than this (0 = disabled)")
	traceCapacity := flag.Int("trace-capacity", 0, "retained traces kept in memory (0 = default)")
	traceSample := flag.Int("trace-sample", 0, "keep 1 in N normal traces; error and slow traces are always kept (0 = default)")
	traceSlowMS := flag.Int64("trace-slow-ms", 0, "always retain traces slower than this (0 = follow -slow-query-ms, else default)")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)
	slog.SetDefault(logger)
	slowQuery := time.Duration(*slowQueryMS) * time.Millisecond
	traceOpts := tracestore.Options{
		Capacity:      *traceCapacity,
		SampleEvery:   *traceSample,
		SlowThreshold: time.Duration(*traceSlowMS) * time.Millisecond,
	}

	if *gateway {
		runGateway(*addr, *nodes, *replication, *clusterToken, *probeInterval, *reconcileInterval, logger, slowQuery, traceOpts)
		return
	}

	var store *release.Store
	if *dataDir != "" {
		if store, err = release.OpenNode(*dataDir, *workers, *nodeID); err != nil {
			fmt.Fprintf(os.Stderr, "serve: opening data dir: %v\n", err)
			os.Exit(1)
		}
		rec := store.Recovery()
		fmt.Fprintf(os.Stderr, "serve: data dir %s: recovered %d ready, %d failed, %d interrupted, %d corrupt (%d bytes on disk)\n",
			*dataDir, rec.Ready, rec.Failed, rec.Interrupted, rec.Corrupt, store.DiskSize())
	} else {
		if store, err = release.NewStoreNode(*workers, *nodeID); err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
	}
	api, err := server.New(store, server.Options{
		MaxBodyBytes: *maxBodyMB << 20,
		ClusterToken: *clusterToken,
		Logger:       logger,
		SlowQuery:    slowQuery,
		Trace:        traceOpts,
		EvalWorkers:  *evalWorkers,
		Engine: engine.Options{
			Workers:       *queryWorkers,
			CacheCapacity: *cacheCapacity,
			MaxBatch:      *maxBatch,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	durability := "memory-only"
	if store.Durable() {
		durability = "durable: " + store.Dir()
	}
	role := ""
	if *nodeID != "" {
		role = fmt.Sprintf(", node %s", *nodeID)
	}
	fmt.Fprintf(os.Stderr, "serve: listening on %s (%d build workers, %s%s)\n", *addr, *workers, durability, role)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
	case <-sig:
		fmt.Fprintln(os.Stderr, "serve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "serve: shutdown: %v\n", err)
		}
		api.Close()
		store.Close()
	}
}

// parseNodes decodes the -nodes flag: comma-separated id=url pairs.
func parseNodes(spec string) ([]cluster.Node, error) {
	var out []cluster.Node
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("node %q is not id=url", part)
		}
		out = append(out, cluster.Node{ID: id, URL: strings.TrimRight(url, "/")})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-gateway needs -nodes id=url,...")
	}
	return out, nil
}

// runGateway serves the cluster gateway until interrupted.
func runGateway(addr, nodesSpec string, replication int, token string, probe, reconcile time.Duration, logger *slog.Logger, slowQuery time.Duration, traceOpts tracestore.Options) {
	members, err := parseNodes(nodesSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(2)
	}
	gw, err := cluster.New(cluster.Options{
		Nodes:             members,
		Replication:       replication,
		Token:             token,
		ProbeInterval:     probe,
		ReconcileInterval: reconcile,
		Logger:            logger,
		SlowQuery:         slowQuery,
		Trace:             traceOpts,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           gw,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	repl := "replication enabled"
	if token == "" {
		repl = "replication DISABLED (no -cluster-token)"
	}
	fmt.Fprintf(os.Stderr, "serve: gateway listening on %s over %d nodes (R=%d, %s)\n",
		addr, len(members), gw.Replication(), repl)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
	case <-sig:
		fmt.Fprintln(os.Stderr, "serve: gateway shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "serve: shutdown: %v\n", err)
		}
		gw.Close()
	}
}
