// Command tracecat fetches one retained trace by request ID and renders
// it as an indented span tree: every line is one span, offset and
// duration in microseconds, nested under the enclosing span by time
// containment. Point it at a gateway and a request that failed over
// mid-flight shows the gateway's per-attempt sub-batch spans and the
// node-local spans of both replicas in one tree.
//
// Usage:
//
//	tracecat [-addr http://localhost:8080] [-json] REQUEST_ID
//
// The request ID is the X-Request-Id response header every route echoes;
// cmd/loadgen's JSON report lists the IDs of the slowest requests per
// endpoint, ready to paste here. Retention is tail-sampled and bounded,
// so a normal fast request may answer 404 — errors and slow requests
// are always kept (within ring capacity).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/pkg/api"
	"repro/pkg/client"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "node or gateway base URL")
	asJSON := flag.Bool("json", false, "print the raw trace document instead of the tree")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecat [-addr URL] [-json] REQUEST_ID")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	id := flag.Arg(0)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	tr, err := client.New(*addr).GetTrace(ctx, id)
	if err != nil {
		if client.IsNotFound(err) {
			fmt.Fprintf(os.Stderr, "tracecat: %v\n(retention is sampled and bounded: only error, slow, and 1-in-N normal traces are kept)\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "tracecat: %v\n", err)
		}
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(tr)
		return
	}
	render(os.Stdout, tr)
}

// render prints the trace header and the span tree.
func render(w *os.File, tr api.TraceResponse) {
	fmt.Fprintf(w, "trace %s  %s  status=%d", tr.RequestID, tr.Route, tr.Status)
	if tr.ErrorCode != "" {
		fmt.Fprintf(w, " error=%s", tr.ErrorCode)
	}
	if tr.Retained != "" {
		fmt.Fprintf(w, " retained=%s", tr.Retained)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "start %s  total %s  origins %s\n",
		tr.StartedAt.Format(time.RFC3339Nano),
		time.Duration(tr.DurationMicros)*time.Microsecond,
		strings.Join(tr.Origins, ","))
	if tr.ReleaseID != "" {
		fmt.Fprintf(w, "release %s\n", tr.ReleaseID)
	}
	if tr.DroppedSpans > 0 {
		fmt.Fprintf(w, "(%d spans dropped by the per-trace cap)\n", tr.DroppedSpans)
	}
	fmt.Fprintln(w)

	// Spans arrive offset-ordered with longer spans first on ties, so a
	// containment stack turns the flat list into indentation: a span
	// nests under the nearest open span that fully covers it in time.
	type open struct{ end int64 }
	var stack []open
	for _, sp := range tr.Spans {
		for len(stack) > 0 && sp.OffsetMicros >= stack[len(stack)-1].end {
			stack = stack[:len(stack)-1]
		}
		indent := strings.Repeat("  ", len(stack))
		node := ""
		if sp.Node != "" {
			node = " node=" + sp.Node
		}
		fmt.Fprintf(w, "%8dus %s%s%s  %s  [%s]\n",
			sp.OffsetMicros, indent, sp.Stage, node,
			time.Duration(sp.Micros)*time.Microsecond, sp.Origin)
		stack = append(stack, open{end: sp.OffsetMicros + sp.Micros})
	}
}
