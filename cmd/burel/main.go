// Command burel anonymizes a CENSUS-schema CSV with the BUREL algorithm and
// writes the generalized release.
//
// Usage:
//
//	burel -beta B [-qi D] [-seed S] [-basic] [-i FILE] [-o FILE] [-stats]
//
// The input must follow cmd/datagen's format (the Table 3 CENSUS schema).
// -qi keeps the first D QI attributes (default 3, as in §6). -stats prints
// an evaluation summary to stderr instead of suppressing it.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"repro/anon"
	"repro/internal/census"
	"repro/internal/likeness"
	"repro/internal/metrics"
	"repro/internal/microdata"
)

func main() {
	beta := flag.Float64("beta", 4, "β-likeness threshold")
	qi := flag.Int("qi", 3, "number of QI attributes to keep (1-5)")
	seed := flag.Int64("seed", 1, "algorithm seed")
	basic := flag.Bool("basic", false, "use basic instead of enhanced β-likeness")
	in := flag.String("i", "", "input CSV (default stdin)")
	out := flag.String("o", "", "output CSV (default stdout)")
	stats := flag.Bool("stats", true, "print evaluation summary to stderr")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			die(err)
		}
		defer f.Close()
		r = f
	}
	table, err := microdata.ReadCSV(bufio.NewReader(r), census.Schema())
	if err != nil {
		die(err)
	}
	table = table.Project(*qi)

	popts := []anon.BURELOption{anon.BURELBeta(*beta), anon.BURELSeed(*seed)}
	if *basic {
		popts = append(popts, anon.BURELBasic())
	}
	// Ctrl-C aborts the anonymization mid-run instead of being ignored
	// until the next write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	rel, err := anon.Anonymize(ctx, table, anon.NewBURELParams(popts...))
	if err != nil {
		die(err)
	}
	elapsed := time.Since(start)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			die(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := microdata.WriteGeneralizedCSV(bw, rel.Partition); err != nil {
		die(err)
	}
	if err := bw.Flush(); err != nil {
		die(err)
	}
	if *stats {
		ev := metrics.Evaluate("BUREL", rel.Partition, likeness.EqualEMD, elapsed)
		fmt.Fprintln(os.Stderr, ev.String())
	}
}

func die(err error) {
	fmt.Fprintf(os.Stderr, "burel: %v\n", err)
	os.Exit(1)
}
