// Command evalgen generates privacy/utility trade-off curves over the
// benchmark corpus (internal/corpus): for every registered anonymization
// method it sweeps the method's privacy knob, runs the full evaluation
// job of internal/eval on each point — the same attack suite and utility
// workload the serving :evaluate endpoint runs — and emits the curves as
// machine-readable JSON.
//
// The output is deterministic byte for byte for fixed flags: datasets
// are pure functions of (name, n, seed), evaluations derive every random
// choice from -eval-seed, and no timestamps are recorded. CI exploits
// that as a semantic regression gate: a checked-in reference file plus
// -check fails the build when any curve drifts beyond -tol.
//
// Usage:
//
//	evalgen [-n 2000] [-seed 1] [-eval-seed 1] [-queries 100]
//	        [-datasets census,healthcare,salary] [-o curves.json]
//	        [-check reference.json] [-tol 0.25]
//
// Structural guarantees are asserted on every run, independent of
// -check: BUREL's achieved β must stay within the target β, ℓ-diverse
// anatomy must deliver min ℓ ≥ ℓ, and each method's information-loss
// curve must fall (with slack) as its privacy knob loosens. A violated
// guarantee is a failed run — these are the monotone trade-off shapes
// the paper reports, and losing one is a correctness bug, not noise.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"repro/anon"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/microdata"
	"repro/internal/release"
	"repro/pkg/api"
)

// Point is one sweep sample: a knob value and its evaluation verdict, or
// the error that made the point infeasible (e.g. an ℓ beyond the
// dataset's eligibility bound — recorded, never silently dropped).
type Point struct {
	Param   string           `json:"param"`
	Value   float64          `json:"value"`
	Error   string           `json:"error,omitempty"`
	Verdict *api.EvalVerdict `json:"verdict,omitempty"`
}

// Curves is the output document: per dataset, per method, the sweep.
type Curves struct {
	N        int                           `json:"n"`
	Seed     int64                         `json:"seed"`
	EvalSeed int64                         `json:"eval_seed"`
	Queries  int                           `json:"queries"`
	Datasets map[string]map[string][]Point `json:"datasets"`
}

// sweep is one method's knob schedule.
type sweep struct {
	method string
	param  string
	values []float64
	params func(v float64) anon.Params
}

// sweeps returns the per-method schedules, privacy loosening (or, for
// anatomy, tightening) left to right.
func sweeps(seed int64) []sweep {
	return []sweep{
		{anon.MethodBUREL, "beta", []float64{1, 2, 4, 8}, func(v float64) anon.Params {
			return anon.NewBURELParams(anon.BURELBeta(v), anon.BURELSeed(seed))
		}},
		// SABRE's bucket count is a rounding function of t, so some t
		// values degenerate to a single EC; this schedule avoids them
		// while still spanning tight to loose closeness.
		{anon.MethodSABRE, "t", []float64{0.1, 0.2, 0.4, 0.6}, func(v float64) anon.Params {
			return anon.NewSABREParams(anon.SABRET(v), anon.SABRESeed(seed))
		}},
		{anon.MethodAnatomy, "l", []float64{2, 3}, func(v float64) anon.Params {
			return anon.NewAnatomyParams(anon.AnatomyL(int(v)), anon.AnatomySeed(seed))
		}},
		{anon.MethodPerturb, "beta", []float64{1, 2, 4, 8}, func(v float64) anon.Params {
			return anon.NewPerturbParams(anon.PerturbBeta(v), anon.PerturbSeed(seed))
		}},
	}
}

func main() {
	n := flag.Int("n", 2000, "rows per corpus table")
	seed := flag.Int64("seed", 1, "corpus generation and anonymization seed")
	evalSeed := flag.Int64("eval-seed", 1, "evaluation workload seed")
	queries := flag.Int("queries", 100, "utility workload size per aggregate")
	datasets := flag.String("datasets", strings.Join(corpus.Datasets(), ","), "comma-separated corpus datasets")
	out := flag.String("o", "", "write curves JSON here (default stdout)")
	check := flag.String("check", "", "compare against this reference curves file")
	tol := flag.Float64("tol", 0.25, "relative tolerance for -check")
	flag.Parse()

	curves := Curves{N: *n, Seed: *seed, EvalSeed: *evalSeed, Queries: *queries, Datasets: map[string]map[string][]Point{}}
	ctx := context.Background()
	failed := false
	for _, ds := range strings.Split(*datasets, ",") {
		ds = strings.TrimSpace(ds)
		if ds == "" {
			continue
		}
		tab, err := corpus.Generate(ds, *n, *seed)
		if err != nil {
			fatal(err)
		}
		curves.Datasets[ds] = map[string][]Point{}
		for _, sw := range sweeps(*seed) {
			points := make([]Point, 0, len(sw.values))
			for _, v := range sw.values {
				pt := Point{Param: sw.param, Value: v}
				verdict, err := evaluatePoint(ctx, tab, sw, v, eval.Params{Queries: *queries, Seed: *evalSeed})
				if err != nil {
					pt.Error = err.Error()
					fmt.Fprintf(os.Stderr, "evalgen: %s/%s %s=%g: dropped: %v\n", ds, sw.method, sw.param, v, err)
				} else {
					pt.Verdict = verdict
				}
				points = append(points, pt)
			}
			curves.Datasets[ds][sw.method] = points
			if err := assertCurveShape(ds, sw, points); err != nil {
				fmt.Fprintf(os.Stderr, "evalgen: GUARANTEE VIOLATED: %v\n", err)
				failed = true
			}
		}
	}

	data, err := json.MarshalIndent(curves, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}

	if *check != "" {
		refData, err := os.ReadFile(*check)
		if err != nil {
			fatal(err)
		}
		var ref Curves
		if err := json.Unmarshal(refData, &ref); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *check, err))
		}
		diffs := compare(curves, ref, *tol)
		for _, d := range diffs {
			fmt.Fprintf(os.Stderr, "evalgen: CURVE DRIFT: %s\n", d)
		}
		if len(diffs) > 0 {
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "evalgen: curves match %s within tol %g\n", *check, *tol)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// evaluatePoint runs one sweep sample through the exact pipeline the
// serving evaluation uses: anonymize via the registry, snapshot the
// release, and hand the original table plus the recorded spec to
// eval.Evaluate — which re-runs and verifies the build before attacking.
func evaluatePoint(ctx context.Context, tab *microdata.Table, sw sweep, v float64, p eval.Params) (*api.EvalVerdict, error) {
	params := sw.params(v)
	spec := release.Spec{Method: sw.method, Params: params}
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	rel, err := anon.Anonymize(ctx, tab, params)
	if err != nil {
		return nil, err
	}
	snap, err := release.NewSnapshot(rel, 0)
	if err != nil {
		return nil, err
	}
	return eval.Evaluate(ctx, tab, snap, spec, p)
}

// assertCurveShape checks the structural guarantees a correct sweep
// cannot violate. Infeasible points (recorded errors) are skipped.
func assertCurveShape(ds string, sw sweep, points []Point) error {
	ok := points[:0:0]
	for _, pt := range points {
		if pt.Verdict != nil {
			ok = append(ok, pt)
		}
	}
	if len(ok) == 0 {
		return fmt.Errorf("%s/%s: every sweep point failed", ds, sw.method)
	}
	const slack = 1.10 // falling curves may wobble 10% per step, not rise
	switch sw.method {
	case anon.MethodBUREL:
		for _, pt := range ok {
			if pt.Verdict.Privacy == nil {
				return fmt.Errorf("%s/burel beta=%g: no privacy block", ds, pt.Value)
			}
			if pt.Verdict.Privacy.AchievedBeta > pt.Value+1e-9 {
				return fmt.Errorf("%s/burel beta=%g: achieved β %g exceeds the target", ds, pt.Value, pt.Verdict.Privacy.AchievedBeta)
			}
		}
		return assertFalling(ds, sw, ok, slack, func(v *api.EvalVerdict) float64 { return v.Privacy.AIL })
	case anon.MethodSABRE:
		for _, pt := range ok {
			if pt.Verdict.Privacy == nil {
				return fmt.Errorf("%s/sabre t=%g: no privacy block", ds, pt.Value)
			}
			if pt.Verdict.Privacy.MaxT > pt.Value+1e-9 {
				return fmt.Errorf("%s/sabre t=%g: max EMD %g exceeds the closeness threshold", ds, pt.Value, pt.Verdict.Privacy.MaxT)
			}
		}
		return assertFalling(ds, sw, ok, slack, func(v *api.EvalVerdict) float64 { return v.Privacy.AIL })
	case anon.MethodAnatomy:
		for _, pt := range ok {
			if pt.Verdict.Privacy == nil || pt.Verdict.Privacy.MinL < int(pt.Value) {
				return fmt.Errorf("%s/anatomy l=%g: release is not %g-diverse (%+v)", ds, pt.Value, pt.Value, pt.Verdict.Privacy)
			}
		}
		return nil
	case anon.MethodPerturb:
		// Perturbation's workload error is sampling-noisy at small
		// magnitudes, so only the endpoint trend is asserted: the loosest
		// β must not be worse for utility than the tightest.
		first, last := ok[0], ok[len(ok)-1]
		if last.Verdict.Utility.CountMedianRelErr > first.Verdict.Utility.CountMedianRelErr*slack+1e-9 {
			return fmt.Errorf("%s/perturb: COUNT error rises across the sweep: beta=%g gives %g, beta=%g gives %g",
				ds, first.Value, first.Verdict.Utility.CountMedianRelErr, last.Value, last.Verdict.Utility.CountMedianRelErr)
		}
		return nil
	}
	return nil
}

// assertFalling requires the measured curve to fall (within slack) as
// the knob loosens left to right — the monotone trade-off the paper
// reports.
func assertFalling(ds string, sw sweep, points []Point, slack float64, y func(*api.EvalVerdict) float64) error {
	for i := 1; i < len(points); i++ {
		prev, cur := y(points[i-1].Verdict), y(points[i].Verdict)
		if cur > prev*slack+1e-9 {
			return fmt.Errorf("%s/%s: curve rises at %s=%g: %g -> %g", ds, sw.method, sw.param, points[i].Value, prev, cur)
		}
	}
	return nil
}

// compare diffs two curve documents: identical shape, and every measured
// value within max(0.02, tol·|ref|). The shape fields compared are the
// ones the paper's figures plot.
func compare(got, ref Curves, tol float64) []string {
	var diffs []string
	if got.N != ref.N || got.Seed != ref.Seed || got.EvalSeed != ref.EvalSeed || got.Queries != ref.Queries {
		diffs = append(diffs, fmt.Sprintf("run config (n=%d seed=%d eval_seed=%d queries=%d) differs from reference (n=%d seed=%d eval_seed=%d queries=%d); regenerate the reference with matching flags",
			got.N, got.Seed, got.EvalSeed, got.Queries, ref.N, ref.Seed, ref.EvalSeed, ref.Queries))
		return diffs
	}
	names := make([]string, 0, len(ref.Datasets))
	for ds := range ref.Datasets {
		names = append(names, ds)
	}
	sort.Strings(names)
	for _, ds := range names {
		gotDS, ok := got.Datasets[ds]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("dataset %s missing from this run", ds))
			continue
		}
		methods := make([]string, 0, len(ref.Datasets[ds]))
		for m := range ref.Datasets[ds] {
			methods = append(methods, m)
		}
		sort.Strings(methods)
		for _, m := range methods {
			refPts, gotPts := ref.Datasets[ds][m], gotDS[m]
			if len(refPts) != len(gotPts) {
				diffs = append(diffs, fmt.Sprintf("%s/%s: %d points vs %d in reference", ds, m, len(gotPts), len(refPts)))
				continue
			}
			for i, rp := range refPts {
				gp := gotPts[i]
				at := fmt.Sprintf("%s/%s %s=%g", ds, m, rp.Param, rp.Value)
				if gp.Value != rp.Value || gp.Param != rp.Param {
					diffs = append(diffs, at+": sweep schedule changed")
					continue
				}
				if (rp.Verdict == nil) != (gp.Verdict == nil) {
					diffs = append(diffs, fmt.Sprintf("%s: feasibility changed (error %q vs %q)", at, gp.Error, rp.Error))
					continue
				}
				if rp.Verdict == nil {
					continue
				}
				for _, f := range verdictFields(rp.Verdict, gp.Verdict) {
					if !within(f.got, f.ref, tol) {
						diffs = append(diffs, fmt.Sprintf("%s: %s = %g, reference %g (tol %g)", at, f.name, f.got, f.ref, tol))
					}
				}
			}
		}
	}
	return diffs
}

type fieldDiff struct {
	name     string
	ref, got float64
}

// verdictFields pairs the compared measurements of two verdicts.
func verdictFields(ref, got *api.EvalVerdict) []fieldDiff {
	out := []fieldDiff{
		{"utility.count_median_rel_err", ref.Utility.CountMedianRelErr, got.Utility.CountMedianRelErr},
		{"utility.sum_median_rel_err", ref.Utility.SumMedianRelErr, got.Utility.SumMedianRelErr},
	}
	if ref.Privacy != nil && got.Privacy != nil {
		out = append(out,
			fieldDiff{"privacy.ail", ref.Privacy.AIL, got.Privacy.AIL},
			fieldDiff{"privacy.achieved_beta", ref.Privacy.AchievedBeta, got.Privacy.AchievedBeta},
			fieldDiff{"privacy.max_t", ref.Privacy.MaxT, got.Privacy.MaxT},
		)
	}
	if ref.Attacks != nil && got.Attacks != nil {
		out = append(out,
			fieldDiff{"attacks.definetti", ref.Attacks.DeFinetti, got.Attacks.DeFinetti},
			fieldDiff{"attacks.naive_bayes", ref.Attacks.NaiveBayes, got.Attacks.NaiveBayes},
			fieldDiff{"attacks.corruption_avg", ref.Attacks.CorruptionAvg, got.Attacks.CorruptionAvg},
		)
	}
	return out
}

// within: coarse tolerance — absolute floor 0.02, else relative.
func within(got, ref, tol float64) bool {
	return math.Abs(got-ref) <= math.Max(0.02, tol*math.Abs(ref))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "evalgen: %v\n", err)
	os.Exit(1)
}
