// Command metricslint validates a Prometheus text-format exposition read
// from stdin (or the files named as arguments) against the rules the
// repro servers promise: every sample preceded by its # TYPE line, no
// duplicate series, histograms monotone with a +Inf bucket whose count
// matches _count, and a _sum per histogram.
//
// It exits 0 on a clean payload and 1 with the first violation on
// stderr otherwise, so CI can gate on a scrape:
//
//	curl -fsS http://localhost:8080/metrics | metricslint
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		lint("stdin", os.Stdin)
		return
	}
	for _, name := range os.Args[1:] {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metricslint: %v\n", err)
			os.Exit(1)
		}
		lint(name, f)
		f.Close()
	}
}

// lint reads one exposition and exits nonzero on the first violation.
func lint(name string, r io.Reader) {
	data, err := io.ReadAll(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricslint: reading %s: %v\n", name, err)
		os.Exit(1)
	}
	if len(data) == 0 {
		fmt.Fprintf(os.Stderr, "metricslint: %s: empty exposition\n", name)
		os.Exit(1)
	}
	if err := obs.LintExposition(data); err != nil {
		fmt.Fprintf(os.Stderr, "metricslint: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("metricslint: %s: ok\n", name)
}
