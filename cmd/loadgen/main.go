// Command loadgen drives query traffic against a running serve instance
// and reports throughput plus request-latency percentiles (p50, p95,
// p99, max) per endpoint, so both the batch endpoint's speedup over
// single-query round-trips and the tail behavior under load are
// measurable from the command line. With -json the same numbers are
// written as a machine-readable report (the BENCH_*.json format).
//
// It is built entirely on the typed Go SDK (repro/pkg/client): releases
// are created with typed anon params, the build is awaited through
// WaitReady, and the workers post batches through QueryBatch (or single
// queries through Query with -single), with the SDK's bounded
// 503/Retry-After retry absorbing the pending window.
//
// It generates a pool of distinct queries of the paper's §6 workload
// shape (λ QI predicates, expected selectivity θ) and replays them
// Zipf-distributed — the skewed repetition real dashboards exhibit and
// the result cache exploits — from a set of concurrent workers. The
// -agg flag mixes aggregate shapes into the pool round-robin: "count"
// (the default), "sum"/"avg"/"min"/"max" over the SA, and "groupby"
// (GROUP BY over a predicate-free QI dimension with SUM), so the
// aggregate and group-expansion paths are exercised under load.
//
// Usage:
//
//	loadgen [-addr http://localhost:8080] [-release r-000001]
//	        [-rows 20000] [-beta 4] [-qi 3] [-seed 1]
//	        [-queries 10000] [-batch 64] [-concurrency 8] [-single]
//	        [-lambda 2] [-theta 0.05] [-distinct 1024] [-zipf-s 1.2]
//	        [-agg count,sum,groupby] [-slowest 5] [-json report.json]
//
// Every response's X-Request-Id is tracked, and the -slowest N requests
// per endpoint are reported with their IDs — each pastes straight into
// cmd/tracecat (or GET /v1/debug/traces/{id}) to see where the time
// went, server-side, span by span.
//
// -addr accepts a comma-separated endpoint list; workers are assigned
// round-robin across the endpoints and throughput is reported both in
// total and per endpoint, so a gateway-vs-direct-nodes comparison is one
// command:
//
//	loadgen -addr http://gw:8090 -release n1-r-000001 ...
//	loadgen -addr http://n1:8080,http://n2:8080 -release n1-r-000001 ...
//
// Without -release it uploads a generated CENSUS table first (through
// the first endpoint) and waits for the build. The query generator
// assumes the release uses the CENSUS schema projected to -qi
// attributes.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/anon"
	"repro/internal/census"
	"repro/internal/microdata"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/pkg/api"
	"repro/pkg/client"
)

func toAPI(q query.Query) api.Query {
	return api.Query{
		Dims: q.Dims, Lo: q.Lo, Hi: q.Hi, SALo: q.SALo, SAHi: q.SAHi,
		Agg: string(q.Agg), GroupBy: q.GroupBy, GroupBuckets: q.GroupBuckets,
	}
}

// groupify turns a generated query into a GROUP BY + SUM query over one
// QI dimension that carries no predicate; when every dimension does, the
// last predicate is dropped to free its dimension.
func groupify(schema *microdata.Schema, q query.Query) query.Query {
	used := make(map[int]bool, len(q.Dims))
	for _, d := range q.Dims {
		used[d] = true
	}
	free := -1
	for d := range schema.QI {
		if !used[d] {
			free = d
			break
		}
	}
	if free == -1 {
		free = q.Dims[len(q.Dims)-1]
		q.Dims = q.Dims[:len(q.Dims)-1]
		q.Lo = q.Lo[:len(q.Lo)-1]
		q.Hi = q.Hi[:len(q.Hi)-1]
	}
	q.Agg = query.AggSum
	q.GroupBy = []int{free}
	return q
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "server base URL(s), comma-separated; workers round-robin across them")
	releaseID := flag.String("release", "", "release ID to query (empty: upload a generated table first)")
	rows := flag.Int("rows", 20000, "rows of the generated table (with empty -release)")
	beta := flag.Float64("beta", 4, "β of the generated release")
	qi := flag.Int("qi", 3, "QI attributes of the release's schema")
	seed := flag.Int64("seed", 1, "workload seed")
	queries := flag.Int("queries", 10000, "total queries to issue")
	batch := flag.Int("batch", 64, "queries per batch request")
	concurrency := flag.Int("concurrency", 8, "concurrent workers")
	single := flag.Bool("single", false, "use the single-query endpoint instead of /v1/query:batch")
	lambda := flag.Int("lambda", 2, "QI predicates per query (λ)")
	theta := flag.Float64("theta", 0.05, "expected query selectivity (θ)")
	distinct := flag.Int("distinct", 1024, "distinct queries in the replay pool")
	zipfS := flag.Float64("zipf-s", 1.2, "Zipf exponent of query repetition (≤ 1: uniform)")
	aggMix := flag.String("agg", "count", "comma-separated aggregate mix cycled through the query pool: count, sum, avg, min, max, groupby")
	slowest := flag.Int("slowest", 5, "request IDs of the N slowest requests remembered per endpoint (0 = disabled)")
	jsonOut := flag.String("json", "", "also write a machine-readable JSON report to this file")
	flag.Parse()
	if *distinct < 1 || *batch < 1 || *concurrency < 1 || *queries < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -distinct, -batch, -concurrency, and -queries must be ≥ 1")
		os.Exit(2)
	}
	var mix []string
	for _, kind := range strings.Split(*aggMix, ",") {
		switch kind = strings.TrimSpace(kind); kind {
		case "count", "sum", "avg", "min", "max", "groupby":
			mix = append(mix, kind)
		case "":
		default:
			fmt.Fprintf(os.Stderr, "loadgen: -agg entry %q is not one of count, sum, avg, min, max, groupby\n", kind)
			os.Exit(2)
		}
	}
	if len(mix) == 0 {
		mix = []string{"count"}
	}

	var endpoints []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			endpoints = append(endpoints, a)
		}
	}
	if len(endpoints) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -addr names no endpoints")
		os.Exit(2)
	}
	clients := make([]*client.Client, len(endpoints))
	for i, a := range endpoints {
		clients[i] = client.New(a)
	}

	ctx := context.Background()
	schema := census.Schema().Project(*qi)

	id := *releaseID
	if id == "" {
		var err error
		if id, err = uploadRelease(ctx, clients[0], *rows, *beta, *qi, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("release %s ready\n", id)
	}

	gen, err := query.NewGenerator(schema, *lambda, *theta, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	pool := make([]api.Query, *distinct)
	for i := range pool {
		q := gen.Next()
		switch kind := mix[i%len(mix)]; kind {
		case "count":
		case "groupby":
			q = groupify(schema, q)
		default:
			q.Agg = query.Aggregate(kind)
		}
		pool[i] = toAPI(q)
	}

	// Per-endpoint tallies, indexed like endpoints; workers write only
	// their endpoint's slot through atomics. lat is a log-bucketed
	// histogram of per-request round-trip times (the percentile source);
	// maxNanos tracks the exact worst request.
	type endpointStats struct {
		done     atomic.Int64 // queries completed
		hits     atomic.Int64
		requests atomic.Int64
		latNanos atomic.Int64
		failed   atomic.Int64
		maxNanos atomic.Int64
		lat      obs.Histogram
		slow     slowTracker // slowest requests, by server request ID
	}
	var (
		issued    atomic.Int64 // queries claimed by workers
		wg        sync.WaitGroup
		stats     = make([]endpointStats, len(endpoints))
		batchSize = *batch
	)
	if *single {
		batchSize = 1
	}
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ep := w % len(endpoints)
			c, st := clients[ep], &stats[ep]
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			var zipf *rand.Zipf
			if *zipfS > 1 {
				zipf = rand.NewZipf(rng, *zipfS, 1, uint64(len(pool)-1))
			}
			pick := func() api.Query {
				if zipf != nil {
					return pool[zipf.Uint64()]
				}
				return pool[rng.Intn(len(pool))]
			}
			for {
				n := int64(batchSize)
				if claimed := issued.Add(n); claimed > int64(*queries) {
					over := claimed - int64(*queries)
					if n -= over; n <= 0 {
						return
					}
				}
				qs := make([]api.Query, n)
				for i := range qs {
					qs[i] = pick()
				}
				t0 := time.Now()
				h, reqID, err := post(ctx, c, id, qs, *single)
				rtt := time.Since(t0)
				st.latNanos.Add(int64(rtt))
				st.lat.Observe(rtt)
				st.slow.note(reqID, rtt, *slowest)
				for {
					prev := st.maxNanos.Load()
					if int64(rtt) <= prev || st.maxNanos.CompareAndSwap(prev, int64(rtt)) {
						break
					}
				}
				st.requests.Add(1)
				if err != nil {
					fmt.Fprintf(os.Stderr, "loadgen: worker %d (%s): %v\n", w, endpoints[ep], err)
					st.failed.Add(n)
					continue
				}
				st.done.Add(n)
				st.hits.Add(int64(h))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var done, hits, requests, latNanos, failed, maxNanos int64
	var overall obs.Histogram
	for i := range stats {
		done += stats[i].done.Load()
		hits += stats[i].hits.Load()
		requests += stats[i].requests.Load()
		latNanos += stats[i].latNanos.Load()
		failed += stats[i].failed.Load()
		if m := stats[i].maxNanos.Load(); m > maxNanos {
			maxNanos = m
		}
		overall.Merge(&stats[i].lat)
	}
	qps := float64(done) / elapsed.Seconds()
	fmt.Printf("queries:      %d (%d failed)\n", done, failed)
	fmt.Printf("elapsed:      %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("throughput:   %.0f queries/sec\n", qps)
	if requests > 0 {
		fmt.Printf("requests:     %d (batch size %d, avg latency %v)\n",
			requests, batchSize, (time.Duration(latNanos) / time.Duration(requests)).Round(time.Microsecond))
		fmt.Printf("latency:      %s\n", latLine(&overall, maxNanos))
	}
	if done > 0 {
		fmt.Printf("cache hits:   %d (%.1f%%)\n", hits, 100*float64(hits)/float64(done))
	}
	if len(endpoints) > 1 {
		for i, a := range endpoints {
			st := &stats[i]
			n := st.done.Load()
			fmt.Printf("endpoint %-32s %8.0f q/s  (%d queries, %d failed, %s)\n",
				a+":", float64(n)/elapsed.Seconds(), n, st.failed.Load(), latLine(&st.lat, st.maxNanos.Load()))
		}
	}
	if *slowest > 0 {
		for i, a := range endpoints {
			for _, sr := range stats[i].slow.list() {
				fmt.Printf("slowest %-32s %8.1fms  %s\n", a+":", sr.Millis, sr.RequestID)
			}
		}
	}
	if *jsonOut != "" {
		rep := report{
			Benchmark: "loadgen",
			Meta:      reportMeta{GeneratedAt: time.Now().UTC().Format(time.RFC3339)},
			Config: reportConfig{
				Endpoints: endpoints, ReleaseID: id, Queries: *queries,
				Batch: batchSize, Concurrency: *concurrency, Single: *single,
				Lambda: *lambda, Theta: *theta, Distinct: *distinct, ZipfS: *zipfS, Seed: *seed,
				Agg: strings.Join(mix, ","),
			},
			ElapsedSeconds: elapsed.Seconds(),
			Queries:        done, Failed: failed, Requests: requests,
			ThroughputQPS: qps, CacheHits: hits,
			Latency: latReport(&overall, requests, latNanos, maxNanos),
		}
		for i, a := range endpoints {
			st := &stats[i]
			rep.Endpoints = append(rep.Endpoints, endpointReport{
				Addr: a, Queries: st.done.Load(), Failed: st.failed.Load(),
				Requests: st.requests.Load(),
				QPS:      float64(st.done.Load()) / elapsed.Seconds(),
				Latency:  latReport(&st.lat, st.requests.Load(), st.latNanos.Load(), st.maxNanos.Load()),
				Slowest:  st.slow.list(),
			})
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("report:       %s\n", *jsonOut)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// report is the -json output: the run's configuration, throughput, and
// request-latency percentiles, overall and per endpoint.
type report struct {
	Benchmark      string           `json:"benchmark"`
	Meta           reportMeta       `json:"meta"`
	Config         reportConfig     `json:"config"`
	ElapsedSeconds float64          `json:"elapsed_seconds"`
	Queries        int64            `json:"queries"`
	Failed         int64            `json:"failed"`
	Requests       int64            `json:"requests"`
	ThroughputQPS  float64          `json:"throughput_qps"`
	CacheHits      int64            `json:"cache_hits"`
	Latency        latencyReport    `json:"latency_ms"`
	Endpoints      []endpointReport `json:"endpoints"`
}

// reportMeta is run provenance, quarantined under one key so report
// consumers (benchdiff, CI baselines) can compare the measurement fields
// structurally and drop "meta" wholesale instead of special-casing each
// timestamp-shaped field.
type reportMeta struct {
	GeneratedAt string `json:"generated_at"`
}

type reportConfig struct {
	Endpoints   []string `json:"endpoints"`
	ReleaseID   string   `json:"release_id"`
	Queries     int      `json:"queries"`
	Batch       int      `json:"batch"`
	Concurrency int      `json:"concurrency"`
	Single      bool     `json:"single"`
	Lambda      int      `json:"lambda"`
	Theta       float64  `json:"theta"`
	Distinct    int      `json:"distinct"`
	ZipfS       float64  `json:"zipf_s"`
	Seed        int64    `json:"seed"`
	Agg         string   `json:"agg,omitempty"`
}

// latencyReport carries request round-trip percentiles in milliseconds.
// Percentiles come from a log-bucketed histogram (upper bound of the
// containing bucket, ≤ 2× resolution); mean and max are exact.
type latencyReport struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// endpointReport carries one endpoint's share of the run. Slowest lists
// the N slowest requests by server request ID, slowest first — each ID
// pastes straight into `tracecat` or GET /v1/debug/traces/{id} (slow
// traces above the server's threshold are always retained).
type endpointReport struct {
	Addr     string        `json:"addr"`
	Queries  int64         `json:"queries"`
	Failed   int64         `json:"failed"`
	Requests int64         `json:"requests"`
	QPS      float64       `json:"qps"`
	Latency  latencyReport `json:"latency_ms"`
	Slowest  []slowRequest `json:"slowest,omitempty"`
}

func latReport(h *obs.Histogram, requests, latNanos, maxNanos int64) latencyReport {
	r := latencyReport{
		P50: h.Quantile(0.50) * 1e3,
		P95: h.Quantile(0.95) * 1e3,
		P99: h.Quantile(0.99) * 1e3,
		Max: float64(maxNanos) / 1e6,
	}
	if requests > 0 {
		r.Mean = float64(latNanos) / float64(requests) / 1e6
	}
	return r
}

// latLine renders the percentile summary for the human-readable report.
func latLine(h *obs.Histogram, maxNanos int64) string {
	q := func(p float64) time.Duration {
		return time.Duration(h.Quantile(p) * float64(time.Second)).Round(time.Microsecond)
	}
	return fmt.Sprintf("p50 %v  p95 %v  p99 %v  max %v",
		q(0.50), q(0.95), q(0.99), time.Duration(maxNanos).Round(time.Microsecond))
}

// uploadRelease generates a CENSUS table, submits a generalized release
// through the SDK, and waits until it is ready.
func uploadRelease(ctx context.Context, c *client.Client, rows int, beta float64, qi int, seed int64) (string, error) {
	tab := census.Generate(census.Options{N: rows, Seed: seed}).Project(qi)
	var csv bytes.Buffer
	if err := tab.WriteCSV(&csv); err != nil {
		return "", err
	}
	rel, err := c.CreateRelease(ctx, client.CreateSpec{
		Method: anon.MethodBUREL,
		Params: anon.NewBURELParams(anon.BURELBeta(beta), anon.BURELSeed(seed)),
		QI:     qi,
		CSV:    csv.String(),
	})
	if err != nil {
		return "", err
	}
	if rel, err = c.WaitReady(ctx, rel.ID, 0); err != nil {
		return "", err
	}
	return rel.ID, nil
}

// post issues one request — a batch, or a single query when single is
// set — and returns the reported cache-hit count plus the server's
// request ID (also recoverable from a failed request's error envelope:
// a failure is exactly the request worth tracing).
func post(ctx context.Context, c *client.Client, id string, qs []api.Query, single bool) (int, string, error) {
	if single {
		res, err := c.QueryDetailed(ctx, id, qs[0])
		if err != nil {
			return 0, errRequestID(err), err
		}
		hits := 0
		if res.Cached {
			hits = 1
		}
		return hits, res.RequestID, nil
	}
	br, err := c.QueryBatch(ctx, id, qs)
	if err != nil {
		return 0, errRequestID(err), err
	}
	return br.CacheHits, br.RequestID, nil
}

// errRequestID extracts the request ID a failed call's error envelope
// carries, "" for transport-level failures.
func errRequestID(err error) string {
	var ae *client.Error
	if errors.As(err, &ae) {
		return ae.RequestID
	}
	return ""
}

// slowRequest is one remembered slow request: its server-minted ID —
// ready for `tracecat` or GET /v1/debug/traces/{id} — and its
// client-observed round-trip.
type slowRequest struct {
	RequestID string  `json:"request_id"`
	Millis    float64 `json:"ms"`
}

// slowTracker remembers the slowest N requests seen, by round-trip time.
type slowTracker struct {
	mu   sync.Mutex
	reqs []slowRequest
}

// note records one finished request; IDs the server never minted (e.g.
// connection refused) are skipped.
func (t *slowTracker) note(requestID string, rtt time.Duration, n int) {
	if requestID == "" || n <= 0 {
		return
	}
	ms := float64(rtt) / 1e6
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.reqs) >= n && ms <= t.reqs[len(t.reqs)-1].Millis {
		return
	}
	t.reqs = append(t.reqs, slowRequest{RequestID: requestID, Millis: ms})
	sort.Slice(t.reqs, func(i, j int) bool { return t.reqs[i].Millis > t.reqs[j].Millis })
	if len(t.reqs) > n {
		t.reqs = t.reqs[:n]
	}
}

// list returns the remembered requests, slowest first.
func (t *slowTracker) list() []slowRequest {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]slowRequest(nil), t.reqs...)
}
