package anon

import (
	"context"
	"fmt"

	"repro/internal/burel"
	"repro/internal/likeness"
)

// MethodBUREL names the BUREL β-likeness generalization method (§4).
const MethodBUREL = "burel"

// DefaultBeta is the β threshold the params constructors default to — the
// β = 4 of the paper's §6 evaluation.
const DefaultBeta = 4

// BURELParams configures a BUREL run.
type BURELParams struct {
	// Beta is the β-likeness threshold (> 0).
	Beta float64 `json:"beta"`
	// Basic selects basic instead of enhanced β-likeness.
	Basic bool `json:"basic,omitempty"`
	// BoundNegative additionally bounds negative information gain (the
	// §3/§7 extension); expect much larger equivalence classes.
	BoundNegative bool `json:"bound_negative,omitempty"`
	// Seed drives every random choice of the run; runs are deterministic
	// for a fixed seed and input.
	Seed int64 `json:"seed,omitempty"`
}

// BURELOption mutates BURELParams during construction.
type BURELOption func(*BURELParams)

// BURELBeta sets the β-likeness threshold.
func BURELBeta(beta float64) BURELOption { return func(p *BURELParams) { p.Beta = beta } }

// BURELBasic selects basic instead of enhanced β-likeness.
func BURELBasic() BURELOption { return func(p *BURELParams) { p.Basic = true } }

// BURELBoundNegative additionally bounds negative information gain.
func BURELBoundNegative() BURELOption { return func(p *BURELParams) { p.BoundNegative = true } }

// BURELSeed sets the run seed.
func BURELSeed(seed int64) BURELOption { return func(p *BURELParams) { p.Seed = seed } }

// NewBURELParams returns BUREL params at the paper's defaults (enhanced
// β-likeness, β = 4), with options applied in order.
func NewBURELParams(opts ...BURELOption) *BURELParams {
	p := &BURELParams{Beta: DefaultBeta}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Method implements Params.
func (p *BURELParams) Method() string { return MethodBUREL }

// Validate implements Params. A typed-nil receiver is invalid, not a
// panic: interface nil checks upstream cannot see it.
func (p *BURELParams) Validate() error {
	if p == nil {
		return fmt.Errorf("burel: nil params")
	}
	if p.Beta <= 0 {
		return fmt.Errorf("burel: beta must be > 0, got %v", p.Beta)
	}
	return nil
}

// burelMethod adapts internal/burel to the Method interface.
type burelMethod struct{}

func init() { MustRegister(burelMethod{}) }

func (burelMethod) Name() string { return MethodBUREL }

// NewParams implements ParamsFactory.
func (burelMethod) NewParams() Params { return NewBURELParams() }

func (burelMethod) Anonymize(ctx context.Context, t *Table, p Params) (*Release, error) {
	bp, ok := p.(*BURELParams)
	if !ok {
		return nil, paramsTypeError(MethodBUREL, p)
	}
	if err := checkRun(ctx, t, p); err != nil {
		return nil, err
	}
	opts := burel.Options{Beta: bp.Beta, Seed: bp.Seed, BoundNegative: bp.BoundNegative}
	if bp.Basic {
		opts.Variant = likeness.Basic
	}
	res, err := burel.AnonymizeContext(ctx, t, opts)
	if err != nil {
		return nil, err
	}
	return &Release{
		Method:    MethodBUREL,
		Schema:    t.Schema,
		Rows:      t.Len(),
		ECs:       res.Partition.Publish(),
		Partition: res.Partition,
		AIL:       res.Partition.AIL(),
	}, nil
}
