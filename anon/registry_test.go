package anon

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// stubMethod is a minimal Method for registry tests.
type stubMethod struct{ name string }

func (m stubMethod) Name() string { return m.name }
func (m stubMethod) Anonymize(context.Context, *Table, Params) (*Release, error) {
	return &Release{Method: m.name}, nil
}

func TestRegistryRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(stubMethod{name: "alpha"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(stubMethod{name: "beta"}); err != nil {
		t.Fatal(err)
	}
	m, err := r.Lookup("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "alpha" {
		t.Fatalf("Lookup returned %q", m.Name())
	}
	if got, want := r.Names(), []string{"alpha", "beta"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
}

func TestRegistryDuplicateRejected(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(stubMethod{name: "alpha"}); err != nil {
		t.Fatal(err)
	}
	err := r.Register(stubMethod{name: "alpha"})
	if !errors.Is(err, ErrDuplicateMethod) {
		t.Fatalf("duplicate Register: %v, want ErrDuplicateMethod", err)
	}
	if err := r.Register(nil); err == nil {
		t.Fatal("Register(nil) accepted")
	}
	if err := r.Register(stubMethod{}); err == nil {
		t.Fatal("empty-name method accepted")
	}
}

func TestRegistryUnknownMethod(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(stubMethod{name: "alpha"}); err != nil {
		t.Fatal(err)
	}
	_, err := r.Lookup("nope")
	if !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("Lookup(nope): %v, want ErrUnknownMethod", err)
	}
	// The error must name the known methods so a wire typo is actionable.
	if !strings.Contains(err.Error(), "alpha") {
		t.Fatalf("error %q does not list known methods", err)
	}
	if _, err := Lookup("nope"); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("default Lookup(nope): %v", err)
	}
}

func TestDefaultRegistryHasBuiltins(t *testing.T) {
	want := []string{MethodAnatomy, MethodBUREL, MethodPerturb, MethodSABRE}
	if got := Methods(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Methods() = %v, want %v", got, want)
	}
	for _, name := range want {
		m, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != name {
			t.Fatalf("method registered as %q reports Name %q", name, m.Name())
		}
		p, err := NewParams(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Method() != name {
			t.Fatalf("NewParams(%q).Method() = %q", name, p.Method())
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("default params of %q invalid: %v", name, err)
		}
	}
}

func TestNewParamsUnknownAndNoFactory(t *testing.T) {
	r := NewRegistry()
	if _, err := r.NewParams("nope"); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("NewParams(nope): %v", err)
	}
	// stubMethod has no factory.
	if err := r.Register(stubMethod{name: "bare"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.NewParams("bare"); err == nil {
		t.Fatal("NewParams of factory-less method succeeded")
	}
}

func TestUnmarshalParams(t *testing.T) {
	// Wire params land on the typed struct, starting from defaults.
	p, err := UnmarshalParams(MethodBUREL, []byte(`{"beta": 2.5, "basic": true, "seed": 9}`))
	if err != nil {
		t.Fatal(err)
	}
	bp, ok := p.(*BURELParams)
	if !ok {
		t.Fatalf("got %T", p)
	}
	if bp.Beta != 2.5 || !bp.Basic || bp.Seed != 9 {
		t.Fatalf("decoded %+v", bp)
	}

	// Empty input keeps the defaults.
	p, err = UnmarshalParams(MethodBUREL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.(*BURELParams).Beta != DefaultBeta {
		t.Fatalf("defaults not applied: %+v", p)
	}

	// Unknown fields are a client bug, not a silent drop.
	if _, err := UnmarshalParams(MethodBUREL, []byte(`{"betta": 2}`)); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("unknown field: %v, want ErrInvalidParams", err)
	}
	// Malformed JSON.
	if _, err := UnmarshalParams(MethodBUREL, []byte(`{`)); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("bad json: %v, want ErrInvalidParams", err)
	}
	// Validation failures surface as ErrInvalidParams.
	for method, body := range map[string]string{
		MethodBUREL:   `{"beta": -1}`,
		MethodPerturb: `{"beta": 0}`,
		MethodAnatomy: `{"l": 1}`,
	} {
		if _, err := UnmarshalParams(method, []byte(body)); !errors.Is(err, ErrInvalidParams) {
			t.Errorf("%s %s: %v, want ErrInvalidParams", method, body, err)
		}
	}
	// Unknown method.
	if _, err := UnmarshalParams("nope", nil); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("unknown method: %v", err)
	}
}
