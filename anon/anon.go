// Package anon is the repository's public anonymization API: one typed
// surface over the paper's family of publication schemes (Cao & Karras,
// "Publishing Microdata with a Robust Privacy Guarantee", PVLDB 2012).
//
// Every scheme implements the same interface:
//
//	type Method interface {
//		Name() string
//		Anonymize(ctx context.Context, t *anon.Table, p anon.Params) (*anon.Release, error)
//	}
//
// and registers itself by name in a process-wide registry, so the release
// store, the HTTP service, CLIs, and notebooks all reach an algorithm the
// same way — by name plus a typed, JSON-(de)serializable Params value —
// and a new scheme becomes a registry entry instead of a fork of every
// consumer. The three built-in methods are:
//
//	anon.MethodBUREL   // β-likeness generalization (§4), *BURELParams
//	anon.MethodAnatomy // Anatomy baseline / ℓ-diverse (§6.3), *AnatomyParams
//	anon.MethodPerturb // (ρ1,ρ2)-privacy randomization (§5), *PerturbParams
//
// Typical in-process use:
//
//	rel, err := anon.Anonymize(ctx, table,
//		anon.NewBURELParams(anon.BURELBeta(4), anon.BURELSeed(1)))
//	est, err := rel.Estimate(anon.Query{SALo: 0, SAHi: 3})
//
// Params constructors apply the paper's §6 defaults; functional options
// override them. Anonymize honors context cancellation: a canceled ctx
// aborts the run instead of letting it finish.
//
// The package re-exports the data-model types a caller needs (Table,
// Schema, Tuple, Query, ...) so external code can build inputs and
// inspect outputs without importing internal packages.
package anon

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/microdata"
	"repro/internal/query"
)

// Data-model aliases: the types a caller needs to construct inputs for a
// Method and to interpret its Release without importing internal
// packages.
type (
	// Table is a microdata table: tuples of QI values plus one SA index.
	Table = microdata.Table
	// Schema describes a table's QI attributes and its SA domain.
	Schema = microdata.Schema
	// Tuple is one row of a table.
	Tuple = microdata.Tuple
	// Attribute is one QI attribute (numeric range or categorical
	// hierarchy).
	Attribute = microdata.Attribute
	// SensitiveAttr is the sensitive attribute's name and value domain.
	SensitiveAttr = microdata.SensitiveAttr
	// PublishedEC is one released row group of a generalized release.
	PublishedEC = microdata.PublishedEC
	// Partition is the pre-publication EC partition of a generalization
	// run, retained on Release for evaluation tooling.
	Partition = microdata.Partition
	// Query is one COUNT(*) aggregation query: conjunctive range
	// predicates over QI attributes plus an SA index range.
	Query = query.Query
)

// Errors shared by the package. Methods wrap them so callers can classify
// failures with errors.Is.
var (
	// ErrUnknownMethod reports a name with no registered method.
	ErrUnknownMethod = errors.New("anon: unknown method")
	// ErrDuplicateMethod reports a Register of an already-taken name.
	ErrDuplicateMethod = errors.New("anon: duplicate method")
	// ErrInvalidParams reports a Params value a method rejects — wrong
	// concrete type or failing validation.
	ErrInvalidParams = errors.New("anon: invalid params")
)

// Params configures one anonymization run. Implementations are typed per
// method (*BURELParams, *AnatomyParams, *PerturbParams, ...), carry JSON
// tags for wire transport, and validate themselves.
type Params interface {
	// Method names the registered method this value configures.
	Method() string
	// Validate rejects parameter combinations the method cannot accept.
	Validate() error
}

// Method is one anonymization scheme. Implementations must be safe for
// concurrent use; every invocation state belongs to the call, not the
// receiver.
type Method interface {
	// Name is the registry key ("burel", "anatomy", "perturb", ...).
	Name() string
	// Anonymize runs the scheme over t under p and returns the release.
	// It fails with a ctx error when canceled mid-run, and wraps
	// ErrInvalidParams when p has the wrong type or fails validation.
	// The table is not copied: callers must not mutate it during the
	// call, and the release may retain references into it.
	Anonymize(ctx context.Context, t *Table, p Params) (*Release, error)
}

// ParamsFactory is implemented by methods that can mint a fresh Params
// value carrying their defaults — the hook NewParams and UnmarshalParams
// use to decode wire params without a per-method switch.
type ParamsFactory interface {
	NewParams() Params
}

// Anonymize dispatches to the registered method named by p.Method(): the
// one-call form of Lookup + Method.Anonymize.
func Anonymize(ctx context.Context, t *Table, p Params) (*Release, error) {
	if p == nil {
		return nil, fmt.Errorf("%w: nil params", ErrInvalidParams)
	}
	m, err := Lookup(p.Method())
	if err != nil {
		return nil, err
	}
	return m.Anonymize(ctx, t, p)
}

// paramsTypeError reports a Params value of the wrong concrete type.
func paramsTypeError(method string, p Params) error {
	return fmt.Errorf("%w: method %q wants its own params type, got %T", ErrInvalidParams, method, p)
}

// checkRun validates the common preconditions of every built-in method.
func checkRun(ctx context.Context, t *Table, p Params) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if t == nil || t.Len() == 0 {
		return fmt.Errorf("%w: empty table", ErrInvalidParams)
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidParams, err)
	}
	return nil
}
