package anon

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/anatomy"
)

// MethodAnatomy names the Anatomy-style publication method (§6.3): the
// Baseline form when L is 0, the full ℓ-diverse two-table form when
// L ≥ 2.
const MethodAnatomy = "anatomy"

// AnatomyParams configures an Anatomy publication.
type AnatomyParams struct {
	// L requests the full ℓ-diverse publication; 0 keeps the Baseline
	// form that withholds per-group SA data. 1 is invalid.
	L int `json:"l,omitempty"`
	// Seed drives the SA scrambling / group assignment randomness.
	Seed int64 `json:"seed,omitempty"`
}

// AnatomyOption mutates AnatomyParams during construction.
type AnatomyOption func(*AnatomyParams)

// AnatomyL requests the full ℓ-diverse publication.
func AnatomyL(l int) AnatomyOption { return func(p *AnatomyParams) { p.L = l } }

// AnatomySeed sets the run seed.
func AnatomySeed(seed int64) AnatomyOption { return func(p *AnatomyParams) { p.Seed = seed } }

// NewAnatomyParams returns Anatomy params at the defaults (Baseline
// form), with options applied in order.
func NewAnatomyParams(opts ...AnatomyOption) *AnatomyParams {
	p := &AnatomyParams{}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Method implements Params.
func (p *AnatomyParams) Method() string { return MethodAnatomy }

// Validate implements Params. A typed-nil receiver is invalid, not a
// panic: interface nil checks upstream cannot see it.
func (p *AnatomyParams) Validate() error {
	if p == nil {
		return fmt.Errorf("anatomy: nil params")
	}
	if p.L != 0 && p.L < 2 {
		return fmt.Errorf("anatomy: ℓ must be 0 (baseline) or ≥ 2, got %d", p.L)
	}
	return nil
}

// anatomyMethod adapts internal/anatomy to the Method interface.
type anatomyMethod struct{}

func init() { MustRegister(anatomyMethod{}) }

func (anatomyMethod) Name() string { return MethodAnatomy }

// NewParams implements ParamsFactory.
func (anatomyMethod) NewParams() Params { return NewAnatomyParams() }

func (anatomyMethod) Anonymize(ctx context.Context, t *Table, p Params) (*Release, error) {
	ap, ok := p.(*AnatomyParams)
	if !ok {
		return nil, paramsTypeError(MethodAnatomy, p)
	}
	if err := checkRun(ctx, t, p); err != nil {
		return nil, err
	}
	rel := &Release{Method: MethodAnatomy, Schema: t.Schema, Rows: t.Len()}
	rng := rand.New(rand.NewSource(ap.Seed))
	if ap.L >= 2 {
		pub, err := anatomy.PublishLDiverse(t, ap.L, rng)
		if err != nil {
			return nil, err
		}
		rel.LDiverse = pub
	} else {
		rel.Baseline = anatomy.Publish(t, rng)
	}
	return rel, ctx.Err()
}
