package anon_test

import (
	"context"
	"encoding/json"
	"testing"

	"repro/anon"
	"repro/internal/census"
)

// TestSABRERegistered: SABRE is a full registry citizen — listed,
// default-params-minting, wire-decodable — and produces a generalized
// release the shared estimator can answer.
func TestSABRERegistered(t *testing.T) {
	found := false
	for _, name := range anon.Methods() {
		if name == anon.MethodSABRE {
			found = true
		}
	}
	if !found {
		t.Fatalf("sabre not registered: %v", anon.Methods())
	}
	p, err := anon.NewParams(anon.MethodSABRE)
	if err != nil {
		t.Fatal(err)
	}
	if sp := p.(*anon.SABREParams); sp.T != anon.DefaultT {
		t.Fatalf("default t = %v, want %v", sp.T, anon.DefaultT)
	}
	// Wire round-trip with unknown-field rejection.
	wp, err := anon.UnmarshalParams(anon.MethodSABRE, []byte(`{"t":0.1,"seed":7}`))
	if err != nil {
		t.Fatal(err)
	}
	if sp := wp.(*anon.SABREParams); sp.T != 0.1 || sp.Seed != 7 {
		t.Fatalf("decoded params %+v", sp)
	}
	if _, err := anon.UnmarshalParams(anon.MethodSABRE, []byte(`{"beta":4}`)); err == nil {
		t.Fatal("foreign param field accepted")
	}
	if _, err := anon.UnmarshalParams(anon.MethodSABRE, []byte(`{"t":-1}`)); err == nil {
		t.Fatal("negative t accepted")
	}

	tab := census.Generate(census.Options{N: 600, Seed: 11}).Project(3)
	rel, err := anon.Anonymize(context.Background(), tab, anon.NewSABREParams(anon.SABRET(0.15), anon.SABRESeed(1)))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Method != anon.MethodSABRE || rel.ECs == nil || rel.NumECs() == 0 {
		t.Fatalf("release method=%q ecs=%d", rel.Method, rel.NumECs())
	}
	total, err := rel.Estimate(anon.Query{SALo: 0, SAHi: len(tab.Schema.SA.Values) - 1})
	if err != nil {
		t.Fatal(err)
	}
	if total < float64(tab.Len())*0.99 || total > float64(tab.Len())*1.01 {
		t.Fatalf("full-domain estimate %v over %d rows", total, tab.Len())
	}

	// Deterministic for a fixed seed: identical EC counts and AIL.
	rel2, err := anon.Anonymize(context.Background(), tab, anon.NewSABREParams(anon.SABRET(0.15), anon.SABRESeed(1)))
	if err != nil {
		t.Fatal(err)
	}
	if rel2.NumECs() != rel.NumECs() || rel2.AIL != rel.AIL {
		t.Fatalf("re-run differs: %d/%v vs %d/%v", rel2.NumECs(), rel2.AIL, rel.NumECs(), rel.AIL)
	}

	// Params JSON round-trips through the typed form.
	raw, err := json.Marshal(anon.NewSABREParams(anon.SABRET(0.2), anon.SABREHilbertBits(8)))
	if err != nil {
		t.Fatal(err)
	}
	back, err := anon.UnmarshalParams(anon.MethodSABRE, raw)
	if err != nil {
		t.Fatal(err)
	}
	if sp := back.(*anon.SABREParams); sp.T != 0.2 || sp.HilbertBits != 8 {
		t.Fatalf("round-trip %+v", sp)
	}
}
