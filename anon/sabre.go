package anon

import (
	"context"
	"fmt"

	"repro/internal/sabre"
)

// MethodSABRE names the SABRE t-closeness bucketization method (Cao,
// Karras, Kalnis, Tan, VLDBJ 2011) — the dedicated t-closeness algorithm
// the β-likeness paper compares against in §6.1. Its output is a
// generalized EC partition, so the PublishedEC estimator, grid index,
// and snapshot codec serve it unchanged.
const MethodSABRE = "sabre"

// DefaultT is the t-closeness threshold the params constructors default
// to, matching the mid-range setting of the §6.1 comparison.
const DefaultT = 0.15

// SABREParams configures a SABRE run.
type SABREParams struct {
	// T is the t-closeness threshold under the equal-distance EMD (≥ 0;
	// smaller is stricter).
	T float64 `json:"t"`
	// Seed drives EC seeding randomness; runs are deterministic for a
	// fixed seed and input.
	Seed int64 `json:"seed,omitempty"`
	// HilbertBits is the space-filling-curve resolution used to cluster
	// EC members (0 = default 10).
	HilbertBits int `json:"hilbert_bits,omitempty"`
}

// SABREOption mutates SABREParams during construction.
type SABREOption func(*SABREParams)

// SABRET sets the t-closeness threshold.
func SABRET(t float64) SABREOption { return func(p *SABREParams) { p.T = t } }

// SABRESeed sets the run seed.
func SABRESeed(seed int64) SABREOption { return func(p *SABREParams) { p.Seed = seed } }

// SABREHilbertBits sets the Hilbert curve resolution.
func SABREHilbertBits(bits int) SABREOption { return func(p *SABREParams) { p.HilbertBits = bits } }

// NewSABREParams returns SABRE params at the defaults (t = 0.15), with
// options applied in order.
func NewSABREParams(opts ...SABREOption) *SABREParams {
	p := &SABREParams{T: DefaultT}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Method implements Params.
func (p *SABREParams) Method() string { return MethodSABRE }

// Validate implements Params. A typed-nil receiver is invalid, not a
// panic: interface nil checks upstream cannot see it.
func (p *SABREParams) Validate() error {
	if p == nil {
		return fmt.Errorf("sabre: nil params")
	}
	if p.T < 0 {
		return fmt.Errorf("sabre: t must be ≥ 0, got %v", p.T)
	}
	if p.HilbertBits < 0 || p.HilbertBits > 63 {
		return fmt.Errorf("sabre: hilbert_bits must be in [0,63], got %d", p.HilbertBits)
	}
	return nil
}

// sabreMethod adapts internal/sabre to the Method interface.
type sabreMethod struct{}

func init() { MustRegister(sabreMethod{}) }

func (sabreMethod) Name() string { return MethodSABRE }

// NewParams implements ParamsFactory.
func (sabreMethod) NewParams() Params { return NewSABREParams() }

func (sabreMethod) Anonymize(ctx context.Context, t *Table, p Params) (*Release, error) {
	sp, ok := p.(*SABREParams)
	if !ok {
		return nil, paramsTypeError(MethodSABRE, p)
	}
	if err := checkRun(ctx, t, p); err != nil {
		return nil, err
	}
	res, err := sabre.Anonymize(t, sabre.Options{T: sp.T, Seed: sp.Seed, HilbertBits: sp.HilbertBits})
	if err != nil {
		return nil, err
	}
	return &Release{
		Method:    MethodSABRE,
		Schema:    t.Schema,
		Rows:      t.Len(),
		ECs:       res.Partition.Publish(),
		Partition: res.Partition,
		AIL:       res.Partition.AIL(),
	}, ctx.Err()
}
