package anon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Registry maps method names to implementations. The zero value is not
// usable; call NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	methods map[string]Method
}

// NewRegistry returns an empty registry. Most callers want the package's
// default registry (Register/Lookup/Methods), which the built-in methods
// populate at init time; a private registry isolates tests and embedders
// that need their own method set.
func NewRegistry() *Registry {
	return &Registry{methods: make(map[string]Method)}
}

// Register adds a method under its Name. Empty names and duplicates are
// rejected — a duplicate registration is almost always two packages
// fighting over one name, which must surface at startup rather than as
// one silently shadowing the other.
func (r *Registry) Register(m Method) error {
	if m == nil {
		return fmt.Errorf("anon: Register(nil)")
	}
	name := m.Name()
	if name == "" {
		return fmt.Errorf("anon: method with empty name (%T)", m)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.methods[name]; exists {
		return fmt.Errorf("%w: %q", ErrDuplicateMethod, name)
	}
	r.methods[name] = m
	return nil
}

// Lookup returns the method registered under name. The error wraps
// ErrUnknownMethod and lists the known names, so a typo on the wire comes
// back actionable.
func (r *Registry) Lookup(name string) (Method, error) {
	r.mu.RLock()
	m, ok := r.methods[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (known: %v)", ErrUnknownMethod, name, r.Names())
	}
	return m, nil
}

// Names returns the registered method names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.methods))
	for name := range r.methods {
		out = append(out, name)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// NewParams returns a fresh Params value carrying the method's defaults.
// It fails for unknown methods and for methods that do not implement
// ParamsFactory.
func (r *Registry) NewParams(name string) (Params, error) {
	m, err := r.Lookup(name)
	if err != nil {
		return nil, err
	}
	pf, ok := m.(ParamsFactory)
	if !ok {
		return nil, fmt.Errorf("anon: method %q does not expose a params factory", name)
	}
	return pf.NewParams(), nil
}

// UnmarshalParams decodes wire params for a method into its typed Params
// value, starting from the method's defaults. Unknown JSON fields are
// rejected — on a public API a silently dropped field is a
// misconfiguration shipped to production. Empty input keeps the
// defaults. The result is validated.
func (r *Registry) UnmarshalParams(method string, data []byte) (Params, error) {
	p, err := r.NewParams(method)
	if err != nil {
		return nil, err
	}
	if len(bytes.TrimSpace(data)) > 0 {
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("%w: method %q: %v", ErrInvalidParams, method, err)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidParams, err)
	}
	return p, nil
}

// defaultRegistry is the process-wide registry the built-in methods join
// at init time.
var defaultRegistry = NewRegistry()

// Register adds a method to the default registry.
func Register(m Method) error { return defaultRegistry.Register(m) }

// MustRegister is Register, panicking on error: the init-time form.
func MustRegister(m Method) {
	if err := Register(m); err != nil {
		panic(err)
	}
}

// Lookup finds a method in the default registry.
func Lookup(name string) (Method, error) { return defaultRegistry.Lookup(name) }

// Methods returns the default registry's method names, sorted.
func Methods() []string { return defaultRegistry.Names() }

// NewParams mints default params for a method of the default registry.
func NewParams(name string) (Params, error) { return defaultRegistry.NewParams(name) }

// UnmarshalParams decodes wire params against the default registry.
func UnmarshalParams(method string, data []byte) (Params, error) {
	return defaultRegistry.UnmarshalParams(method, data)
}
