package anon

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/perturb"
)

// MethodPerturb names the (ρ1, ρ2)-privacy randomized-response method
// (§5): QI values are published intact, the SA column is randomized under
// per-value retention probabilities calibrated to β-likeness.
const MethodPerturb = "perturb"

// PerturbParams configures a perturbation run.
type PerturbParams struct {
	// Beta is the β-likeness threshold the mechanism is calibrated to
	// (> 0).
	Beta float64 `json:"beta"`
	// Seed drives the per-tuple randomization.
	Seed int64 `json:"seed,omitempty"`
}

// PerturbOption mutates PerturbParams during construction.
type PerturbOption func(*PerturbParams)

// PerturbBeta sets the β-likeness threshold.
func PerturbBeta(beta float64) PerturbOption { return func(p *PerturbParams) { p.Beta = beta } }

// PerturbSeed sets the randomization seed.
func PerturbSeed(seed int64) PerturbOption { return func(p *PerturbParams) { p.Seed = seed } }

// NewPerturbParams returns perturbation params at the paper's defaults
// (β = 4), with options applied in order.
func NewPerturbParams(opts ...PerturbOption) *PerturbParams {
	p := &PerturbParams{Beta: DefaultBeta}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Method implements Params.
func (p *PerturbParams) Method() string { return MethodPerturb }

// Validate implements Params. A typed-nil receiver is invalid, not a
// panic: interface nil checks upstream cannot see it.
func (p *PerturbParams) Validate() error {
	if p == nil {
		return fmt.Errorf("perturb: nil params")
	}
	if p.Beta <= 0 {
		return fmt.Errorf("perturb: beta must be > 0, got %v", p.Beta)
	}
	return nil
}

// perturbMethod adapts internal/perturb to the Method interface.
type perturbMethod struct{}

func init() { MustRegister(perturbMethod{}) }

func (perturbMethod) Name() string { return MethodPerturb }

// NewParams implements ParamsFactory.
func (perturbMethod) NewParams() Params { return NewPerturbParams() }

func (perturbMethod) Anonymize(ctx context.Context, t *Table, p Params) (*Release, error) {
	pp, ok := p.(*PerturbParams)
	if !ok {
		return nil, paramsTypeError(MethodPerturb, p)
	}
	if err := checkRun(ctx, t, p); err != nil {
		return nil, err
	}
	scheme, err := perturb.NewScheme(t, pp.Beta)
	if err != nil {
		return nil, err
	}
	return &Release{
		Method:    MethodPerturb,
		Schema:    t.Schema,
		Rows:      t.Len(),
		Scheme:    scheme,
		Perturbed: scheme.Perturb(t, rand.New(rand.NewSource(pp.Seed))),
	}, ctx.Err()
}
