package anon_test

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/anon"
	"repro/internal/census"
	"repro/internal/query"
)

func censusTable(t *testing.T, n int) *anon.Table {
	t.Helper()
	return census.Generate(census.Options{N: n, Seed: 42}).Project(3)
}

// TestAnonymizeAllMethods: every built-in method is reachable through the
// registry dispatch and yields a queryable release whose estimates match
// the direct estimator of internal/query.
func TestAnonymizeAllMethods(t *testing.T) {
	tab := censusTable(t, 1200)
	ctx := context.Background()
	cases := []struct {
		params anon.Params
		check  func(t *testing.T, r *anon.Release)
	}{
		{anon.NewBURELParams(anon.BURELBeta(4), anon.BURELSeed(1)), func(t *testing.T, r *anon.Release) {
			if r.NumECs() == 0 || r.Partition == nil || r.AIL <= 0 {
				t.Fatalf("generalized release incomplete: ecs=%d ail=%v", r.NumECs(), r.AIL)
			}
		}},
		{anon.NewAnatomyParams(anon.AnatomySeed(1)), func(t *testing.T, r *anon.Release) {
			if r.Baseline == nil || r.LDiverse != nil {
				t.Fatal("baseline anatomy release incomplete")
			}
		}},
		{anon.NewAnatomyParams(anon.AnatomyL(3), anon.AnatomySeed(1)), func(t *testing.T, r *anon.Release) {
			if r.LDiverse == nil || r.NumECs() == 0 {
				t.Fatal("ℓ-diverse anatomy release incomplete")
			}
		}},
		{anon.NewPerturbParams(anon.PerturbBeta(4), anon.PerturbSeed(1)), func(t *testing.T, r *anon.Release) {
			if r.Perturbed == nil || r.Scheme == nil {
				t.Fatal("perturbed release incomplete")
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.params.Method(), func(t *testing.T) {
			rel, err := anon.Anonymize(ctx, tab, tc.params)
			if err != nil {
				t.Fatal(err)
			}
			if rel.Method != tc.params.Method() || rel.Rows != tab.Len() || rel.Schema != tab.Schema {
				t.Fatalf("release header: %+v", rel)
			}
			tc.check(t, rel)
			gen, err := query.NewGenerator(tab.Schema, 2, 0.1, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20; i++ {
				q := gen.Next()
				est, err := rel.Estimate(q)
				if err != nil {
					t.Fatalf("query %d: %v", i, err)
				}
				if math.IsNaN(est) || math.IsInf(est, 0) {
					t.Fatalf("query %d: estimate %v", i, est)
				}
			}
		})
	}
}

// TestEstimateMatchesDirectEstimators pins Release.Estimate to the query
// package's estimators for the generalized case (the other methods call
// the estimator functions directly).
func TestEstimateMatchesDirectEstimators(t *testing.T) {
	tab := censusTable(t, 800)
	rel, err := anon.Anonymize(context.Background(), tab, anon.NewBURELParams(anon.BURELSeed(3)))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := query.NewGenerator(tab.Schema, 2, 0.1, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		q := gen.Next()
		got, err := rel.Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		want := query.EstimateGeneralized(rel.Schema, rel.ECs, q)
		if got != want {
			t.Fatalf("query %d: Estimate %v, direct %v", i, got, want)
		}
	}
}

func TestEstimateValidatesQueries(t *testing.T) {
	tab := censusTable(t, 200)
	rel, err := anon.Anonymize(context.Background(), tab, anon.NewAnatomyParams())
	if err != nil {
		t.Fatal(err)
	}
	bad := []anon.Query{
		{Dims: []int{99}, Lo: []float64{0}, Hi: []float64{1}},
		{Dims: []int{0}}, // missing bounds
		{SALo: 3, SAHi: 1},
		{SALo: 0, SAHi: 100000},
	}
	for i, q := range bad {
		if _, err := rel.Estimate(q); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

// TestAnonymizeCancellation: a canceled context aborts the run with the
// context's error, both before the run starts and mid-run.
func TestAnonymizeCancellation(t *testing.T) {
	tab := censusTable(t, 5000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, p := range []anon.Params{
		anon.NewBURELParams(),
		anon.NewAnatomyParams(),
		anon.NewPerturbParams(),
	} {
		if _, err := anon.Anonymize(ctx, tab, p); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with canceled ctx: %v, want context.Canceled", p.Method(), err)
		}
	}
}

func TestAnonymizeRejectsBadInput(t *testing.T) {
	ctx := context.Background()
	tab := censusTable(t, 100)
	if _, err := anon.Anonymize(ctx, tab, nil); !errors.Is(err, anon.ErrInvalidParams) {
		t.Fatalf("nil params: %v", err)
	}
	if _, err := anon.Anonymize(ctx, nil, anon.NewBURELParams()); !errors.Is(err, anon.ErrInvalidParams) {
		t.Fatalf("nil table: %v", err)
	}
	if _, err := anon.Anonymize(ctx, tab, anon.NewBURELParams(anon.BURELBeta(-2))); !errors.Is(err, anon.ErrInvalidParams) {
		t.Fatalf("invalid beta: %v", err)
	}
	// Typed-nil params slip past interface nil checks; they must come
	// back as ErrInvalidParams, not a nil-pointer panic.
	for _, p := range []anon.Params{(*anon.BURELParams)(nil), (*anon.AnatomyParams)(nil), (*anon.PerturbParams)(nil)} {
		if _, err := anon.Anonymize(ctx, tab, p); !errors.Is(err, anon.ErrInvalidParams) {
			t.Fatalf("typed-nil %T: %v", p, err)
		}
	}
	// Params of one method handed to another: the registry dispatches on
	// Params.Method(), so this can only be provoked by calling a method
	// directly.
	m, err := anon.Lookup(anon.MethodBUREL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Anonymize(ctx, tab, anon.NewPerturbParams()); !errors.Is(err, anon.ErrInvalidParams) {
		t.Fatalf("cross-method params: %v", err)
	}
}

// TestParamsJSONRoundTrip: every params type survives marshal →
// UnmarshalParams unchanged, so wire transport is lossless.
func TestParamsJSONRoundTrip(t *testing.T) {
	cases := []anon.Params{
		anon.NewBURELParams(anon.BURELBeta(2.5), anon.BURELBasic(), anon.BURELBoundNegative(), anon.BURELSeed(7)),
		anon.NewAnatomyParams(anon.AnatomyL(4), anon.AnatomySeed(3)),
		anon.NewPerturbParams(anon.PerturbBeta(1.5), anon.PerturbSeed(11)),
	}
	for _, p := range cases {
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := anon.UnmarshalParams(p.Method(), data)
		if err != nil {
			t.Fatalf("%s: %v", p.Method(), err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("%s round trip: %+v != %+v", p.Method(), got, p)
		}
	}
}

// TestDeterminism: a fixed seed and input give identical releases.
func TestDeterminism(t *testing.T) {
	tab := censusTable(t, 600)
	ctx := context.Background()
	a, err := anon.Anonymize(ctx, tab, anon.NewBURELParams(anon.BURELSeed(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := anon.Anonymize(ctx, tab, anon.NewBURELParams(anon.BURELSeed(5)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.ECs, b.ECs) {
		t.Fatal("same seed produced different generalized releases")
	}
}
