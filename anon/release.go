package anon

import (
	"fmt"

	"repro/internal/anatomy"
	"repro/internal/perturb"
	"repro/internal/query"
)

// Release is the shared result of every Method: the published artifact
// plus whatever the matching estimator needs to answer COUNT(*) queries.
// Exactly one payload group is set, according to the method:
//
//   - generalization (BUREL): ECs (+ Partition, AIL)
//   - anatomy: Baseline or LDiverse
//   - perturbation: Perturbed + Scheme
//
// A Release is immutable after Anonymize returns; Estimate is safe for
// concurrent use.
type Release struct {
	// Method is the registry name of the producing method.
	Method string
	// Schema describes the (possibly projected) table the release was
	// built from.
	Schema *Schema
	// Rows is the input table size.
	Rows int

	// ECs is the generalized publication: one entry per equivalence
	// class, QI bounding box plus SA multiset.
	ECs []PublishedEC
	// Partition is the pre-publication partition behind ECs, retained so
	// evaluation tooling (information-loss and achieved-privacy metrics,
	// generalized-CSV output) can inspect the exact row groups.
	Partition *Partition
	// AIL is the average information loss of a generalized release
	// (Eq. 5); 0 for other methods.
	AIL float64

	// Baseline is the Anatomy baseline publication (ℓ = 0).
	Baseline *anatomy.Publication
	// LDiverse is the full ℓ-diverse Anatomy publication (ℓ ≥ 2).
	LDiverse *anatomy.LDiversePublication

	// Perturbed is the SA-randomized table of the perturbation method.
	Perturbed *Table
	// Scheme is the calibrated perturbation mechanism, needed to
	// reconstruct estimates from Perturbed.
	Scheme *perturb.Scheme
}

// NumECs returns the number of published groups, 0 for methods without
// them.
func (r *Release) NumECs() int {
	switch {
	case r.ECs != nil:
		return len(r.ECs)
	case r.LDiverse != nil:
		return len(r.LDiverse.Groups)
	}
	return 0
}

// Estimate answers one COUNT(*) query with the estimator matching the
// release's method: intersection over generalized ECs (§6.2), per-group
// intersection for ℓ-diverse Anatomy, distribution scaling for the
// Baseline, and PM⁻¹ reconstruction for perturbed releases (§5). The
// query is bounds-checked against the schema first, so malformed input
// errors instead of panicking. Estimates may be negative for perturbed
// releases; the reconstruction estimator is unbiased, not non-negative.
//
// This is the linear in-process path; the serving layer answers the same
// queries through a per-release index (internal/release).
func (r *Release) Estimate(q Query) (float64, error) {
	if err := query.Validate(r.Schema, q); err != nil {
		return 0, err
	}
	if len(q.GroupBy) != 0 {
		// A grouped query is a set of scalar queries, one per cell; the
		// batch engine expands and fans them out. A single-estimate API
		// has no place to put the per-cell results.
		return 0, fmt.Errorf("anon: grouped queries are executed by the batch engine, not Estimate")
	}
	switch {
	case r.ECs != nil:
		return query.EstimateGeneralized(r.Schema, r.ECs, q), nil
	case r.LDiverse != nil:
		return query.EstimateLDiverse(r.LDiverse, q), nil
	case r.Baseline != nil:
		return query.EstimateBaseline(r.Baseline, q)
	case r.Perturbed != nil:
		return query.EstimatePerturbed(r.Perturbed, r.Scheme, q)
	}
	return 0, fmt.Errorf("anon: release of method %q has no queryable payload", r.Method)
}
