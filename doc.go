// Package repro is a from-scratch Go reproduction of "Publishing Microdata
// with a Robust Privacy Guarantee" (Cao & Karras, PVLDB 5(11), 2012): the
// β-likeness privacy model, the BUREL generalization algorithm, the
// (ρ1i, ρ2i)-privacy perturbation scheme, and every comparator and
// experiment of the paper's evaluation.
//
// The supported programmatic surface is the top-level anon package (the
// Method registry with typed params over every publication scheme) and
// pkg/client (the typed Go SDK for the HTTP service, with pkg/api as the
// wire contract); the algorithm internals live under internal/. See
// README.md for the package map and the HTTP API, and DESIGN.md for the
// system inventory and the architecture of the public API and the
// release/serving layer. The benchmarks in bench_test.go regenerate each
// table and figure; cmd/serve runs the anonymization/query service — as
// a single durable node or, with -gateway/-node-id, as a sharded
// multi-node cluster with snapshot replication and scatter/gather query
// routing (internal/cluster).
package repro
