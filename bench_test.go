package repro

import (
	"math/rand"
	"testing"

	"repro/internal/burel"
	"repro/internal/census"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/hilbert"
	"repro/internal/likeness"
	"repro/internal/metrics"
	"repro/internal/microdata"
	"repro/internal/mondrian"
	"repro/internal/perturb"
	"repro/internal/query"
	"repro/internal/sabre"
)

// benchConfig scales the experiment benchmarks: paper trends at a size that
// keeps one iteration around a second. Use cmd/experiments -full for the
// paper-scale run.
func benchConfig() experiments.Config {
	c := experiments.Quick()
	c.N = 20000
	c.Queries = 200
	return c
}

// ---- One benchmark per paper table/figure ----

func BenchmarkFig4a(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4a(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4b(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4b(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4c(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4c(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8a(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8a(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8b(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8b(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8c(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8c(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8d(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8d(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9a(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9a(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9b(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9b(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9c(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9c(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9d(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9d(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table7(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigNB(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FigNB(c); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Component benchmarks: the individual algorithms at 100K scale ----

func benchTable(b *testing.B, n int) *census.Options {
	b.Helper()
	return &census.Options{N: n, Seed: 42}
}

func BenchmarkBUREL100K(b *testing.B) {
	t := census.Generate(*benchTable(b, 100000)).Project(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := burel.Anonymize(t, burel.Options{Beta: 4, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLMondrian100K(b *testing.B) {
	t := census.Generate(*benchTable(b, 100000)).Project(3)
	model, err := likeness.NewModel(4, t)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mondrian.Anonymize(t, mondrian.BetaLikeness{Model: model})
	}
}

func BenchmarkDMondrian100K(b *testing.B) {
	t := census.Generate(*benchTable(b, 100000)).Project(3)
	overall := dist.Distribution(t.SADistribution())
	dd := &likeness.DeltaDisclosure{Delta: likeness.DeltaForBeta(4, overall), P: overall}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mondrian.Anonymize(t, mondrian.DeltaDisclosure{Model: dd})
	}
}

func BenchmarkSABRE100K(b *testing.B) {
	t := census.Generate(*benchTable(b, 100000)).Project(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sabre.Anonymize(t, sabre.Options{T: 0.15, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPerturb100K(b *testing.B) {
	t := census.Generate(*benchTable(b, 100000)).Project(3)
	scheme, err := perturb.NewScheme(t, 4)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scheme.Perturb(t, rng)
	}
}

func BenchmarkReconstruct(b *testing.B) {
	t := census.Generate(*benchTable(b, 100000)).Project(3)
	scheme, err := perturb.NewScheme(t, 4)
	if err != nil {
		b.Fatal(err)
	}
	pert := scheme.Perturb(t, rand.New(rand.NewSource(1)))
	counts := pert.SACounts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheme.Reconstruct(counts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHilbertIndex(b *testing.B) {
	c := hilbert.MustNew(3, 10)
	m, err := hilbert.NewMapper(c, []float64{0, 0, 0}, []float64{100, 100, 100})
	if err != nil {
		b.Fatal(err)
	}
	point := []float64{17, 83, 42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Index(point)
	}
}

func BenchmarkQueryWorkload(b *testing.B) {
	t := census.Generate(*benchTable(b, 50000)).Project(3)
	res, err := burel.Anonymize(t, burel.Options{Beta: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	pub := res.Partition.Publish()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen, err := query.NewGenerator(t.Schema, 2, 0.1, rand.New(rand.NewSource(7)))
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := query.MedianRelativeError(t, gen, func(q query.Query) (float64, error) {
			return query.EstimateGeneralized(t.Schema, pub, q), nil
		}, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation benchmarks: the design choices DESIGN.md calls out ----

// BenchmarkAblationSeedStrategies compares the default contiguous-slab
// materializer against the paper-literal random-seed retrieval; the bench
// reports AIL for both as custom metrics (slab is materially lower, see
// DESIGN.md).
func BenchmarkAblationSeedStrategies(b *testing.B) {
	t := census.Generate(*benchTable(b, 50000)).Project(3)
	model, err := likeness.NewModel(4, t)
	if err != nil {
		b.Fatal(err)
	}
	// Literal-retrieval scaffolding (bucketization shared across iters).
	fDP := func(p float64) float64 { return model.MaxFreq(p) * 0.95 }
	sp, err := burel.DPPartition(model.P, fDP)
	if err != nil {
		b.Fatal(err)
	}
	v2b := make([]int, len(model.P))
	for s := 0; s < sp.NumBuckets(); s++ {
		for _, v := range sp.Segment(s) {
			v2b[v] = s
		}
	}
	bucketRows := make([][]int, sp.NumBuckets())
	for r, tp := range t.Tuples {
		bucketRows[v2b[tp.SA]] = append(bucketRows[v2b[tp.SA]], r)
	}
	sizes := make([]int, sp.NumBuckets())
	minF := make([]float64, sp.NumBuckets())
	for s := range sizes {
		sizes[s] = len(bucketRows[s])
		minF[s] = sp.MinFreq(s)
	}
	leaves := burel.BiSplit(sizes, minF, model.MaxFreq)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := burel.Anonymize(t, burel.Options{Beta: 4, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Partition.AIL(), "AIL-slab")

		ret, err := burel.NewRetriever(t, bucketRows, 10)
		if err != nil {
			b.Fatal(err)
		}
		ecs := ret.MaterializeSeeded(leaves, rand.New(rand.NewSource(1)), burel.RandomSeed)
		lit := &microdata.Partition{Table: t, ECs: ecs}
		b.ReportMetric(lit.AIL(), "AIL-literal")
	}
}

// BenchmarkAblationMondrianRetry measures the strengthened retry-dimensions
// Mondrian against the paper's single-try variant.
func BenchmarkAblationMondrianRetry(b *testing.B) {
	t := census.Generate(*benchTable(b, 50000)).Project(3)
	model, err := likeness.NewModel(4, t)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		single := mondrian.AnonymizeOpts(t, mondrian.BetaLikeness{Model: model}, mondrian.Options{})
		retry := mondrian.AnonymizeOpts(t, mondrian.BetaLikeness{Model: model}, mondrian.Options{RetryDimensions: true})
		b.ReportMetric(single.AIL(), "AIL-single")
		b.ReportMetric(retry.AIL(), "AIL-retry")
	}
}

// BenchmarkAblationHeadroom sweeps the bucketization headroom.
func BenchmarkAblationHeadroom(b *testing.B) {
	t := census.Generate(*benchTable(b, 50000)).Project(3)
	for i := 0; i < b.N; i++ {
		for _, h := range []float64{0.01, 0.05, 0.20} {
			res, err := burel.Anonymize(t, burel.Options{Beta: 4, Seed: 1, Headroom: h})
			if err != nil {
				b.Fatal(err)
			}
			_ = res.Partition.AIL()
		}
	}
}

// BenchmarkEvaluate measures the full release-evaluation pipeline.
func BenchmarkEvaluate(b *testing.B) {
	t := census.Generate(*benchTable(b, 50000)).Project(3)
	res, err := burel.Anonymize(t, burel.Options{Beta: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.Evaluate("BUREL", res.Partition, likeness.EqualEMD, 0)
	}
}
